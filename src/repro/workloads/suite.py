"""The named workload suite — stand-ins for the paper's benchmarks.

The paper evaluates on PARSEC and SPLASH-2 binaries, which cannot ship
here; per DESIGN.md's substitution table each stand-in reproduces the
*directory-relevant* behaviour of one benchmark class: its private-block
fraction, sharing pattern, write intensity and working-set pressure.  The
names carry a ``-like`` suffix to keep the substitution honest.

Suffix guide (what each stand-in stresses):

==================  =============================================================
name                directory behaviour modelled
==================  =============================================================
blackscholes-like   embarrassingly parallel, almost all private, modest WS
swaptions-like      private-heavy, tiny working set (low directory pressure)
bodytrack-like      read-mostly shared model data + private scratch
fluidanimate-like   neighbour (producer/consumer) communication
canneal-like        huge working set, low locality — heavy capacity pressure
barnes-like         migratory bodies + read-shared tree
ocean-like          streaming private grids + boundary exchange
radix-like          streaming with high write fraction (permutation phase)
mix                 four groups of cores running different patterns
==================  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..common.errors import ConfigError
from ..common.rng import DeterministicRng
from ..sim.trace import Trace
from . import algorithms, patterns


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: a pattern builder plus its parameters."""

    name: str
    description: str
    builder: Callable[..., Trace]
    params: Dict[str, object] = field(default_factory=dict)

    def build(
        self,
        num_cores: int,
        ops_per_core: int,
        seed: int,
        block_bytes: int = 64,
    ) -> Trace:
        """Generate the trace for a concrete system size."""
        rng = DeterministicRng(seed)
        return self.builder(
            num_cores,
            ops_per_core,
            rng,
            block_bytes=block_bytes,
            **self.params,
        )


def _mix(num_cores, ops_per_core, rng, *, block_bytes=64) -> Trace:
    """Four core groups each running a different pattern, merged."""
    quarter = max(1, num_cores // 4)
    sub_traces = [
        patterns.private_working_set(
            num_cores, ops_per_core, rng.spawn(1), block_bytes=block_bytes
        ),
        patterns.shared_read_only(
            num_cores, ops_per_core, rng.spawn(2), block_bytes=block_bytes
        ),
        patterns.producer_consumer(
            num_cores, ops_per_core, rng.spawn(3), block_bytes=block_bytes
        ),
        patterns.migratory(
            num_cores, ops_per_core, rng.spawn(4), block_bytes=block_bytes
        ),
    ]
    trace = Trace(num_cores)
    for core in range(num_cores):
        source = sub_traces[min(core // quarter, 3)]
        trace.ops[core] = source.ops[core]
    return trace


SUITE: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            "blackscholes-like",
            "embarrassingly parallel option pricing: ~97% private accesses",
            patterns.private_working_set,
            {"ws_blocks": 320, "write_frac": 0.2, "zipf_alpha": 0.5},
        ),
        WorkloadSpec(
            "swaptions-like",
            "private-heavy with a small hot working set",
            patterns.private_working_set,
            {"ws_blocks": 96, "write_frac": 0.3, "zipf_alpha": 0.8},
        ),
        WorkloadSpec(
            "bodytrack-like",
            "read-mostly shared model data plus private scratch space",
            patterns.shared_read_only,
            {"shared_blocks": 384, "private_blocks": 192, "shared_frac": 0.35},
        ),
        WorkloadSpec(
            "fluidanimate-like",
            "neighbour communication between adjacent cores",
            patterns.producer_consumer,
            {"buffer_blocks": 48, "private_blocks": 224, "comm_frac": 0.25},
        ),
        WorkloadSpec(
            "canneal-like",
            "huge low-locality working set: maximum capacity pressure",
            patterns.private_working_set,
            {"ws_blocks": 1024, "write_frac": 0.3, "zipf_alpha": 0.3},
        ),
        WorkloadSpec(
            "barnes-like",
            "migratory bodies with read-shared tree structure",
            patterns.migratory,
            {"migratory_blocks": 96, "private_blocks": 192, "migratory_frac": 0.25},
        ),
        WorkloadSpec(
            "ocean-like",
            "streaming private grids with boundary exchange",
            patterns.streaming,
            {"stream_blocks": 1536, "write_frac": 0.35},
        ),
        WorkloadSpec(
            "radix-like",
            "streaming sort with a write-heavy permutation phase",
            patterns.streaming,
            {"stream_blocks": 768, "write_frac": 0.55},
        ),
        WorkloadSpec(
            "mix",
            "heterogeneous: private / read-shared / producer-consumer / migratory",
            _mix,
            {},
        ),
        # Extra stress workloads beyond the paper's suite (not part of the
        # default evaluation order; see EXTRA_WORKLOADS).
        WorkloadSpec(
            "falseshare-like",
            "false sharing: cores write different words of the same lines",
            patterns.false_sharing,
            {"hot_blocks": 16, "fs_frac": 0.3},
        ),
        WorkloadSpec(
            "phased-like",
            "bulk-synchronous: private compute phases + shared exchange bursts",
            patterns.phased,
            {"compute_blocks": 192, "exchange_blocks": 64},
        ),
        WorkloadSpec(
            "locks-like",
            "lock contention: spin-read, acquire, critical section, release",
            patterns.lock_contention,
            {"num_locks": 4, "lock_frac": 0.2},
        ),
        # Algorithm-derived workloads (repro.workloads.algorithms): traces
        # modelling concrete parallel algorithms rather than pure sharing
        # shapes.  See ALGORITHM_WORKLOADS.
        WorkloadSpec(
            "louvain-like",
            "graph clustering: read-mostly frontier + migratory community labels",
            algorithms.graph_clustering,
            {},
        ),
        WorkloadSpec(
            "matmul-like",
            "tiled dense matmul: systolic tile handoff with phase barriers",
            algorithms.tiled_matmul,
            {},
        ),
        WorkloadSpec(
            "sieve-like",
            "segmented prime sieve: strided writes over a shared bitmap",
            algorithms.prime_sieve,
            {},
        ),
        WorkloadSpec(
            "unionfind-like",
            "union-find segmentation: pointer chasing + migratory roots",
            algorithms.union_find,
            {},
        ),
        WorkloadSpec(
            "weakscale-like",
            "weak-scaling unit: compact private set, long post-warmup hit runs",
            patterns.private_working_set,
            # Uniform draws over an L1-resident set: every block is touched
            # early (coupon-collector warmup), then the steady state is
            # event-free — the regime where run-length batching pays.
            {"ws_blocks": 64, "write_frac": 0.25, "zipf_alpha": 0.0},
        ),
    ]
}

#: The default evaluation order (private-heavy -> heavily-shared -> mix).
SUITE_ORDER: List[str] = [
    "blackscholes-like",
    "swaptions-like",
    "bodytrack-like",
    "fluidanimate-like",
    "canneal-like",
    "barnes-like",
    "ocean-like",
    "radix-like",
    "mix",
]


#: Stress workloads available beyond the paper-style evaluation order.
EXTRA_WORKLOADS: List[str] = [
    "falseshare-like",
    "locks-like",
    "phased-like",
    "weakscale-like",
]


#: Algorithm-derived workloads (:mod:`repro.workloads.algorithms`).
ALGORITHM_WORKLOADS: List[str] = [
    "louvain-like",
    "matmul-like",
    "sieve-like",
    "unionfind-like",
]


def workload_names() -> List[str]:
    """Names accepted by :func:`build_workload`: the evaluation order plus
    the extra stress and algorithm-derived workloads."""
    return list(SUITE_ORDER) + list(EXTRA_WORKLOADS) + list(ALGORITHM_WORKLOADS)


def build_workload(
    name: str,
    num_cores: int,
    ops_per_core: int,
    seed: int = 1,
    block_bytes: int = 64,
) -> Trace:
    """Generate a named suite workload."""
    try:
        spec = SUITE[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; known: {workload_names()}"
        ) from None
    return spec.build(num_cores, ops_per_core, seed, block_bytes)
