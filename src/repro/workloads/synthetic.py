"""Address-stream primitives the workload patterns compose.

Each stream yields *block indices* within a region; patterns place regions
in the global address space and convert to byte addresses.  Streams draw
from an explicit :class:`~repro.common.rng.DeterministicRng`, so a workload
is reproducible from ``(name, seed)``.
"""

from __future__ import annotations

from ..common.errors import ConfigError
from ..common.rng import DeterministicRng


class BlockStream:
    """Produces a sequence of block indices in ``[0, num_blocks)``."""

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ConfigError("stream needs at least one block")
        self.num_blocks = num_blocks

    def next(self) -> int:
        """The next block index."""
        raise NotImplementedError


class SequentialStream(BlockStream):
    """Cyclic sequential sweep (streaming/stencil inner loops)."""

    def __init__(self, num_blocks: int, stride: int = 1) -> None:
        super().__init__(num_blocks)
        if stride < 1:
            raise ConfigError("stride must be >= 1")
        self.stride = stride
        self._pos = 0

    def next(self) -> int:
        value = self._pos
        self._pos = (self._pos + self.stride) % self.num_blocks
        return value


class UniformStream(BlockStream):
    """Uniform random block (pointer-chasing over a flat set)."""

    def __init__(self, num_blocks: int, rng: DeterministicRng) -> None:
        super().__init__(num_blocks)
        self._rng = rng

    def next(self) -> int:
        return self._rng.randint(0, self.num_blocks - 1)


class ZipfStream(BlockStream):
    """Zipf-skewed random block — hot-set locality, the common case.

    ``alpha`` around 0.6-0.9 matches typical cache-access skew; 0 degrades
    to uniform.
    """

    def __init__(self, num_blocks: int, rng: DeterministicRng, alpha: float = 0.7) -> None:
        super().__init__(num_blocks)
        if alpha < 0:
            raise ConfigError("zipf alpha must be non-negative")
        self._rng = rng
        self.alpha = alpha

    def next(self) -> int:
        return self._rng.zipf_index(self.num_blocks, self.alpha)


class PhasedStream(BlockStream):
    """Alternates between two streams in fixed-length phases.

    Models compute/communicate phase behaviour: ``primary`` for
    ``primary_len`` ops, then ``secondary`` for ``secondary_len``, repeat.
    """

    def __init__(
        self,
        primary: BlockStream,
        secondary: BlockStream,
        primary_len: int,
        secondary_len: int,
    ) -> None:
        super().__init__(max(primary.num_blocks, secondary.num_blocks))
        if primary_len < 1 or secondary_len < 1:
            raise ConfigError("phase lengths must be >= 1")
        self.primary = primary
        self.secondary = secondary
        self.primary_len = primary_len
        self.secondary_len = secondary_len
        self._count = 0

    def in_primary(self) -> bool:
        """Is the stream currently in its primary phase?"""
        cycle = self.primary_len + self.secondary_len
        return (self._count % cycle) < self.primary_len

    def next(self) -> int:
        stream = self.primary if self.in_primary() else self.secondary
        self._count += 1
        return stream.next()
