"""Tests for the API documentation generator (and docstring coverage)."""

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import pytest

import repro

TOOLS = Path(repro.__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

gen_api_docs = importlib.import_module("gen_api_docs")


class TestGenerator:
    def test_generates_all_modules(self, tmp_path):
        output = tmp_path / "API.md"
        count = gen_api_docs.generate(output)
        assert count >= 40
        text = output.read_text()
        for symbol in (
            "repro.core.stash_directory",
            "StashDirectory",
            "DiscoveryEngine",
            "repro.coherence.protocol",
            "build_system",
        ):
            assert symbol in text

    def test_first_paragraph(self):
        assert gen_api_docs.first_paragraph("Line one\nline two.\n\nRest.") == (
            "Line one line two."
        )
        assert gen_api_docs.first_paragraph("") == "(undocumented)"

    def test_signature_fallback(self):
        assert gen_api_docs.signature_of(int) == "(...)" or "(" in gen_api_docs.signature_of(int)


class TestDocstringCoverage:
    """Deliverable (e): doc comments on every public item."""

    @pytest.mark.parametrize(
        "module_name",
        [
            info.name
            for info in pkgutil.walk_packages(
                [str(Path(repro.__file__).parent)], prefix="repro."
            )
            if not info.name.endswith("__main__")
        ],
    )
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for info in pkgutil.walk_packages(
            [str(Path(repro.__file__).parent)], prefix="repro."
        ):
            if info.name.endswith("__main__"):
                continue
            module = importlib.import_module(info.name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not obj.__doc__:
                        undocumented.append(f"{info.name}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"
