"""Tests for the pluggable dispatch backends and graceful interruption.

The satellite requirement covered here: a ``KeyboardInterrupt`` / SIGTERM
during a batched sweep cancels pending futures, drains the pool — even
with a *blocked* worker — and leaves the result cache consistent (every
entry loads, no temp files).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.analysis import dispatch, runner
from repro.workloads import store as trace_store
from tests.conftest import tiny_config

OPS = 150


def tiny_point(seed: int = 1, workload: str = "blackscholes-like"):
    return runner.SweepPoint(
        workload, tiny_config(check_invariants=False), OPS, seed
    )


@pytest.fixture(autouse=True)
def fresh_state():
    previous = runner.configure()
    runner.clear_memo()
    runner.counters.reset()
    trace_store.clear_memo()
    trace_store.counters.reset()
    yield
    runner.configure(**previous)
    runner.clear_memo()
    runner.counters.reset()
    trace_store.clear_memo()
    trace_store.counters.reset()


def _double_batch(batch):
    return [item * 2 for item in batch]


def _boom_batch(batch):
    raise RuntimeError("boom")


def _sleep_batch(batch):
    time.sleep(300)
    return batch


class TestSerialBackend:
    def test_runs_inline(self):
        backend = dispatch.SerialBackend()
        future = backend.submit(_double_batch, [1, 2, 3])
        assert future.done()
        assert future.result() == [2, 4, 6]

    def test_exception_lands_in_future(self):
        backend = dispatch.SerialBackend()
        future = backend.submit(_boom_batch, [1])
        with pytest.raises(RuntimeError, match="boom"):
            future.result()

    def test_keyboard_interrupt_propagates(self):
        def _interrupt(batch):
            raise KeyboardInterrupt

        backend = dispatch.SerialBackend()
        with pytest.raises(KeyboardInterrupt):
            backend.submit(_interrupt, [1])


class TestInProcessBackend:
    def test_batches_complete(self):
        backend = dispatch.InProcessBackend(workers=2)
        try:
            futures = [backend.submit(_double_batch, [i]) for i in range(6)]
            assert [f.result(timeout=30) for f in futures] == [
                [0], [2], [4], [6], [8], [10]
            ]
        finally:
            backend.shutdown()

    def test_in_flight_returns_to_zero(self):
        backend = dispatch.InProcessBackend(workers=2)
        try:
            futures = [backend.submit(_double_batch, [i]) for i in range(4)]
            for future in futures:
                future.result(timeout=30)
            deadline = time.monotonic() + 5
            while backend.in_flight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert backend.in_flight == 0
            assert backend.utilization == 0.0
        finally:
            backend.shutdown()

    def test_shutdown_idempotent(self):
        backend = dispatch.InProcessBackend(workers=1)
        backend.submit(_double_batch, [1]).result(timeout=30)
        backend.shutdown()
        backend.shutdown()


class TestProcessPoolBackend:
    def test_batches_complete(self):
        backend = dispatch.ProcessPoolBackend(workers=1)
        try:
            future = backend.submit(_double_batch, [1, 2])
            assert future.result(timeout=60) == [2, 4]
        finally:
            backend.shutdown()

    def test_blocked_worker_cannot_wedge_shutdown(self):
        """The satellite regression: a worker stuck in a 300s sleep must
        not stall ``shutdown(cancel_pending=True)``."""
        backend = dispatch.ProcessPoolBackend(workers=1)
        blocked = backend.submit(_sleep_batch, [1])
        queued = backend.submit(_double_batch, [2])
        # Give the pool a moment to hand the blocked batch to the worker.
        deadline = time.monotonic() + 30
        while not blocked.running() and time.monotonic() < deadline:
            time.sleep(0.01)
        start = time.monotonic()
        backend.shutdown(cancel_pending=True)
        elapsed = time.monotonic() - start
        assert elapsed < 30, f"shutdown took {elapsed:.1f}s with a blocked worker"
        # Neither batch may ever produce a result: each future is still
        # pending (stuck in the call queue when the worker died), cancelled,
        # or failed (BrokenProcessPool) — but never successful.
        for future in (queued, blocked):
            if future.done() and not future.cancelled():
                assert future.exception(timeout=5) is not None
        # A fresh backend still works after the hard drain.
        replacement = dispatch.ProcessPoolBackend(workers=1)
        try:
            assert replacement.submit(_double_batch, [3]).result(timeout=60) == [6]
        finally:
            replacement.shutdown()


class TestMakeBackend:
    def test_known_names(self):
        for name in ("serial", "inproc", "pool"):
            backend = dispatch.make_backend(name, 2)
            assert backend.name == name
            backend.shutdown()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            dispatch.make_backend("carrier-pigeon")

    def test_describe(self):
        backend = dispatch.make_backend("inproc", 3)
        assert backend.describe() == {"backend": "inproc", "workers": 3}
        backend.shutdown()


class TestRunBatches:
    def test_outputs_in_input_order(self):
        backend = dispatch.InProcessBackend(workers=2)
        try:
            outputs = dispatch.run_batches(
                backend, _double_batch, [[3], [1], [2]]
            )
            assert outputs == [[6], [2], [4]]
        finally:
            backend.shutdown()

    def test_on_batch_sees_every_completion(self):
        seen = {}
        backend = dispatch.InProcessBackend(workers=2)
        try:
            dispatch.run_batches(
                backend,
                _double_batch,
                [[i] for i in range(5)],
                on_batch=lambda index, out: seen.__setitem__(index, out),
            )
        finally:
            backend.shutdown()
        assert seen == {0: [0], 1: [2], 2: [4], 3: [6], 4: [8]}

    def test_interrupt_cancels_and_reraises(self):
        gate = threading.Event()

        def _interrupt_second(batch):
            if batch == ["bad"]:
                gate.wait(timeout=30)
                raise KeyboardInterrupt
            gate.set()
            return batch

        backend = dispatch.InProcessBackend(workers=2)
        with pytest.raises(KeyboardInterrupt):
            dispatch.run_batches(
                backend, _interrupt_second, [["good"], ["bad"]]
            )
        # The backend was drained by the interrupt path.
        assert backend._pool is None


class TestGracefulSigterm:
    def test_sigterm_becomes_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with dispatch.graceful_sigterm():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # interrupted by the handler

    def test_previous_handler_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with dispatch.graceful_sigterm():
            assert signal.getsignal(signal.SIGTERM) is dispatch._raise_interrupt
        assert signal.getsignal(signal.SIGTERM) is before


class TestRunnerGracefulShutdown:
    """Interrupting a batched sweep keeps the cache consistent."""

    def test_interrupt_keeps_finished_points_and_clean_cache(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        points = [tiny_point(seed=s) for s in (1, 2, 3, 4)]
        real_run_batch = runner._run_batch
        calls = []
        lock = threading.Lock()

        def _wrapped(batch, spool_dir=None, spool_enabled=True):
            with lock:
                calls.append(len(batch))
                first = len(calls) == 1
            if first:
                return real_run_batch(batch, spool_dir, spool_enabled)
            # Interrupt only once the first batch's result has actually
            # been folded into the disk cache, so "finished work is kept"
            # is deterministic rather than a completion-order race.
            deadline = time.monotonic() + 30
            while not list(cache_dir.glob("*.json")):
                if time.monotonic() >= deadline:  # pragma: no cover
                    break
                time.sleep(0.005)
            raise KeyboardInterrupt

        monkeypatch.setattr(runner, "_run_batch", _wrapped)
        with pytest.raises(KeyboardInterrupt):
            runner.run_points(
                points,
                workers=2,
                cache_dir=cache_dir,
                cache_enabled=True,
                batch_size=1,
                backend="inproc",
            )

        # Cache is consistent: no temp droppings, every entry loads.
        entries = list(cache_dir.glob("*.json"))
        assert not list(cache_dir.glob("*.tmp.*"))
        disk = runner.DiskCache(cache_dir)
        loaded = [disk.load(path.stem) for path in entries]
        assert all(result is not None for result in loaded)
        # The batch that completed before the interrupt was kept.
        assert len(entries) >= 1

        # Resuming the sweep serves the finished points from disk.
        monkeypatch.setattr(runner, "_run_batch", real_run_batch)
        runner.clear_memo()
        runner.counters.reset()
        results = runner.run_points(
            points, workers=1, cache_dir=cache_dir, cache_enabled=True
        )
        assert len(results) == 4 and all(r is not None for r in results)
        assert runner.counters.disk_hits >= len(entries)

    def test_sweep_results_identical_across_backends(self, tmp_path):
        points = [tiny_point(seed=s) for s in (1, 2)]
        serial = runner.run_points(
            points, workers=1, cache_enabled=False, trace_cache_enabled=False
        )
        for backend in ("inproc", "pool"):
            runner.clear_memo()
            got = runner.run_points(
                points,
                workers=2,
                cache_enabled=False,
                trace_cache_enabled=False,
                backend=backend,
            )
            assert got == serial, f"backend {backend} diverged"

    def test_configure_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            runner.configure(backend="smoke-signals")
