"""Unit tests for the experiment registry (small parameterizations).

These exercise every run_* function with tiny workloads so the full suite
stays fast; the benchmark harness runs the paper-scale versions.
"""

import pytest

from repro.analysis import experiments as exp
from repro.common.config import DirectoryKind
from repro.common.errors import ConfigError

WLS = ["blackscholes-like"]
OPS = 300


@pytest.fixture(autouse=True)
def fresh_cache():
    exp.clear_cache()
    yield
    exp.clear_cache()


class TestHelpers:
    def test_geomean(self):
        assert exp.geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert exp.geomean([]) == 0.0

    def test_geomean_ignores_nonpositive(self):
        assert exp.geomean([0.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_resolve_workloads(self):
        assert exp.resolve_workloads(None) == exp.QUICK_WORKLOADS
        assert len(exp.resolve_workloads("all")) == 9
        assert exp.resolve_workloads(["mix"]) == ["mix"]

    def test_make_config_core_scaling(self):
        cfg = exp.make_config(num_cores=64)
        assert cfg.noc.nodes == 64
        assert cfg.llc.blocks >= 64 * cfg.l1.blocks

    def test_make_config_rejects_odd_core_count(self):
        with pytest.raises(ConfigError):
            exp.make_config(num_cores=24)

    def test_simulate_memoizes(self):
        cfg = exp.make_config(DirectoryKind.SPARSE, 1.0)
        a = exp.simulate("mix", cfg, ops_per_core=OPS)
        b = exp.simulate("mix", cfg, ops_per_core=OPS)
        assert a is b


class TestStaticExperiments:
    def test_config_table(self):
        out = exp.run_config_table()
        assert out.experiment_id == "T1"
        assert "cores" in out.text

    def test_storage_table(self):
        out = exp.run_storage_table()
        assert "sparse" in out.text and "stash" in out.text
        # Stash at 1/8 must be far smaller than sparse at 1x.
        assert out.data["stash@0.125"] < 0.3 * out.data["sparse@1.0"]


class TestSimulationExperiments:
    def test_characterization(self):
        out = exp.run_characterization(WLS, ops_per_core=OPS)
        assert out.data["blackscholes-like"]["private_block_fraction"] > 0.9

    def test_invalidation_sweep_monotone_pressure(self):
        out = exp.run_invalidation_sweep(WLS, ratios=[1.0, 0.125], ops_per_core=OPS)
        series = out.data["series"]["blackscholes-like"]
        assert series[1] > series[0]  # less directory => more invalidations

    def test_performance_sweep_shapes(self):
        out = exp.run_performance_sweep(
            WLS,
            ratios=[1.0, 0.125],
            kinds=[DirectoryKind.SPARSE, DirectoryKind.STASH],
            ops_per_core=OPS,
        )
        sparse = out.data["series"]["sparse"]
        stash = out.data["series"]["stash"]
        assert sparse[1] > stash[1]  # stash wins under pressure

    def test_headline(self):
        out = exp.run_headline(WLS, ops_per_core=OPS)
        rows = out.data["rows"]
        geomean_row = rows[-1]
        assert geomean_row[0] == "geomean"
        assert geomean_row[3] < geomean_row[2]  # stash@1/8 beats sparse@1/8

    def test_discovery_stats(self):
        out = exp.run_discovery_stats(WLS, ratios=[0.125], ops_per_core=OPS)
        disc_per_kilo, false_rate = out.data["blackscholes-like@0.125"]
        assert disc_per_kilo >= 0
        assert 0 <= false_rate <= 1

    def test_effective_capacity_expansion(self):
        out = exp.run_effective_capacity(WLS, ratio=0.125, ops_per_core=1200)
        assert out.data["blackscholes-like"] > 1.0  # stash extends reach

    def test_energy_comparison(self):
        out = exp.run_energy_comparison(WLS, ratios=[1.0, 0.125], ops_per_core=OPS)
        assert set(out.data["series"]) == {"sparse", "stash"}

    def test_ablation_outputs(self):
        for runner in (
            exp.run_ablation_eligibility,
            exp.run_ablation_notification,
        ):
            out = runner(WLS, ops_per_core=OPS)
            assert out.data["rows"]

    def test_traffic_sweep(self):
        out = exp.run_traffic_sweep(WLS, ratios=[1.0, 0.125], ops_per_core=OPS)
        assert "stash" in out.data["series"]


class TestSeedStatistics:
    def test_mean_std(self):
        from repro.analysis.experiments import mean_std

        mean, std = mean_std([2.0, 4.0])
        assert mean == 3.0 and std == 1.0

    def test_mean_std_empty(self):
        from repro.analysis.experiments import mean_std

        assert mean_std([]) == (0.0, 0.0)

    def test_simulate_many_distinct_seeds(self):
        from repro.analysis.experiments import make_config, simulate_many
        from repro.common.config import DirectoryKind

        results = simulate_many(
            "mix", make_config(DirectoryKind.STASH, 0.25), ops_per_core=OPS,
            seeds=(1, 2),
        )
        assert len(results) == 2
        assert results[0].execution_time != results[1].execution_time

    def test_run_seed_stability_output(self):
        from repro.analysis.experiments import run_seed_stability

        out = run_seed_stability(WLS, seeds=(1, 2), ops_per_core=OPS)
        stats = out.data["blackscholes-like"]
        assert stats["stash"][0] > 0
        assert "mean" in out.text
