"""Unit tests for text-figure rendering."""

from repro.analysis.figures import render_bars, render_grouped_bars, render_series


class TestRenderSeries:
    def test_series_as_columns(self):
        text = render_series(
            "fig", "R", ["1x", "1/2x"], {"sparse": [1.0, 1.2], "stash": [1.0, 1.01]}
        )
        assert "sparse" in text and "stash" in text
        assert "1/2x" in text

    def test_values_rendered(self):
        text = render_series("fig", "x", [1], {"s": [3.14159]})
        assert "3.142" in text


class TestRenderBars:
    def test_bar_lengths_proportional(self):
        text = render_bars("t", ["a", "b"], [1.0, 2.0])
        line_a, line_b = text.splitlines()[2:4]
        assert line_b.count("#") == 2 * line_a.count("#")

    def test_zero_values_no_bars(self):
        text = render_bars("t", ["a"], [0.0])
        assert "#" not in text

    def test_all_zero_peak_guard(self):
        render_bars("t", ["a", "b"], [0.0, 0.0])  # must not divide by zero

    def test_unit_suffix(self):
        assert "ms" in render_bars("t", ["a"], [5.0], unit="ms")

    def test_max_value_scales(self):
        text = render_bars("t", ["a"], [1.0], max_value=4.0)
        bar_line = text.splitlines()[2]
        assert bar_line.count("#") == 10  # 40 chars * 1/4


class TestGroupedBars:
    def test_groups_per_x(self):
        text = render_grouped_bars(
            "t", ["1x", "2x"], {"sparse": [1, 2], "stash": [1, 1]}
        )
        assert text.count("sparse") == 2
        assert text.count("stash") == 2

    def test_title_present(self):
        assert render_grouped_bars("Title", ["x"], {"s": [1]}).startswith("Title")


class TestSparkline:
    def test_empty(self):
        from repro.analysis.figures import render_sparkline

        assert render_sparkline([]) == ""

    def test_length_capped_to_width(self):
        from repro.analysis.figures import render_sparkline

        line = render_sparkline(list(range(500)), width=40)
        assert len(line) == 40

    def test_short_series_unchanged_length(self):
        from repro.analysis.figures import render_sparkline

        assert len(render_sparkline([1, 2, 3])) == 3

    def test_monotone_series_ends_high(self):
        from repro.analysis.figures import SPARK_GLYPHS, render_sparkline

        line = render_sparkline([0, 1, 2, 3, 4])
        assert line[-1] == SPARK_GLYPHS[-1]
        assert line[0] == SPARK_GLYPHS[0]

    def test_all_zero(self):
        from repro.analysis.figures import SPARK_GLYPHS, render_sparkline

        assert set(render_sparkline([0, 0, 0])) == {SPARK_GLYPHS[0]}
