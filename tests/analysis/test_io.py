"""Unit tests for result serialization and comparison."""

import pytest

from repro.analysis.io import (
    compare_results,
    config_from_dict,
    config_to_dict,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.common.config import DirectoryKind, MemoryModel, SharerFormat
from repro.common.errors import TraceError
from repro.sim.simulator import run_trace
from repro.sim.trace import Trace
from tests.conftest import tiny_config


def small_result(kind=DirectoryKind.STASH):
    trace = Trace(4)
    for i in range(40):
        trace.append(i % 4, i * 64, i % 3 == 0)
    return run_trace(tiny_config(kind, check_invariants=False), trace)


class TestConfigRoundtrip:
    def test_roundtrip_preserves_everything(self):
        config = tiny_config(
            DirectoryKind.CUCKOO,
            ratio=0.25,
            sharer_format=SharerFormat.LIMITED_POINTER,
            clean_eviction_notification=True,
        )
        back = config_from_dict(config_to_dict(config))
        assert back == config

    def test_enums_survive(self):
        from dataclasses import replace

        config = replace(tiny_config(), memory_model=MemoryModel.DRAM)
        back = config_from_dict(config_to_dict(config))
        assert back.memory_model is MemoryModel.DRAM
        assert back.directory.kind is DirectoryKind.STASH

    def test_dict_is_json_plain(self):
        import json

        json.dumps(config_to_dict(tiny_config()))  # must not raise


class TestResultRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        result = small_result()
        path = tmp_path / "run.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.execution_time == result.execution_time
        assert loaded.stats == result.stats
        assert loaded.config == result.config
        assert loaded.effective_tracking_samples == result.effective_tracking_samples

    def test_derived_metrics_survive(self, tmp_path):
        result = small_result()
        path = tmp_path / "run.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.l1_miss_rate == result.l1_miss_rate
        assert loaded.total_flit_hops == result.total_flit_hops

    def test_bad_version_rejected(self):
        data = result_to_dict(small_result())
        data["format_version"] = 99
        with pytest.raises(TraceError):
            result_from_dict(data)


class TestCompare:
    def test_compare_table(self):
        stash = small_result(DirectoryKind.STASH)
        sparse = small_result(DirectoryKind.SPARSE)
        text = compare_results({"sparse": sparse, "stash": stash})
        assert "sparse" in text and "stash" in text
        assert "norm. time" in text

    def test_first_entry_is_baseline(self):
        result = small_result()
        text = compare_results({"base": result, "same": result})
        # Both rows normalized against "base": time columns read 1.000.
        assert text.count("1.000") >= 4

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            compare_results({})
