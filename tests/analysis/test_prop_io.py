"""Property tests: serialization round-trips over random configurations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.io import config_from_dict, config_to_dict
from repro.common.mesi import CoherenceProtocol
from repro.common.config import (
    CacheConfig,
    DirectoryConfig,
    DirectoryKind,
    MemoryModel,
    NoCConfig,
    SharerFormat,
    StashEligibility,
    SystemConfig,
)

POW2 = st.sampled_from([1, 2, 4, 8, 16, 32, 64])


@st.composite
def system_configs(draw):
    """Random valid SystemConfigs spanning the whole option space."""
    l1_sets = draw(POW2)
    l1_ways = draw(st.integers(1, 4))
    cores = draw(st.sampled_from([1, 2, 4]))
    mesh_w = draw(st.sampled_from([2, 4]))
    mesh_h = 2 if mesh_w * 2 >= cores else 4
    use_l2 = draw(st.booleans())
    l2 = None
    if use_l2:
        l2 = CacheConfig(sets=max(l1_sets, 8), ways=max(l1_ways, 2))
    return SystemConfig(
        num_cores=cores,
        l1=CacheConfig(sets=l1_sets, ways=l1_ways),
        l2=l2,
        llc=CacheConfig(sets=64, ways=4),
        directory=DirectoryConfig(
            kind=draw(st.sampled_from(list(DirectoryKind))),
            coverage_ratio=draw(st.sampled_from([0.125, 0.5, 1.0, 2.0])),
            ways=draw(st.integers(1, 8)),
            sharer_format=draw(st.sampled_from(list(SharerFormat))),
            stash_eligibility=draw(st.sampled_from(list(StashEligibility))),
            clean_eviction_notification=draw(st.booleans()),
            discovery_filter_slots=draw(st.sampled_from([0, 8, 64])),
        ),
        noc=NoCConfig(mesh_width=mesh_w, mesh_height=mesh_h),
        memory_model=draw(st.sampled_from(list(MemoryModel))),
        protocol=draw(st.sampled_from(list(CoherenceProtocol))),
        check_invariants=draw(st.booleans()),
        seed=draw(st.integers(0, 1000)),
    )


@settings(max_examples=60, deadline=None)
@given(config=system_configs())
def test_config_roundtrip_property(config):
    """Any valid configuration survives serialization exactly."""
    assert config_from_dict(config_to_dict(config)) == config


@settings(max_examples=60, deadline=None)
@given(config=system_configs())
def test_config_dict_is_json_safe(config):
    import json

    json.loads(json.dumps(config_to_dict(config)))


@settings(max_examples=30, deadline=None)
@given(config=system_configs())
def test_config_hashable_and_equal_by_value(config):
    """simulate()'s memo key relies on frozen-dataclass hashing."""
    clone = config_from_dict(config_to_dict(config))
    assert hash(clone) == hash(config)
    assert {config: 1}[clone] == 1
