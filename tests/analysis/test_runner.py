"""Tests for the parallel sweep engine and its persistent result cache.

Covers the satellite requirements explicitly: cache-key stability within
and across processes, key sensitivity to every parameter, corruption
tolerance (truncated/garbage/mismatched files are recomputed, never
crashed on), parallel/serial result identity (per-point and batched),
trace-store sharing (one generation per distinct workload key) and
three-layer clearing (result memo, result disk, trace memo+spool).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import experiments as exp
from repro.analysis import runner
from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind
from repro.workloads import store as trace_store
from tests.conftest import tiny_config

OPS = 200


def tiny_point(seed: int = 1, ops: int = OPS, workload: str = "blackscholes-like", **cfg):
    """A fast-to-simulate sweep point over the shared tiny 4-core config."""
    return runner.SweepPoint(
        workload, tiny_config(check_invariants=False, **cfg), ops, seed
    )


@pytest.fixture(autouse=True)
def fresh_state(tmp_path):
    """Cold memos, fresh counters, and restored runner defaults per test."""
    previous = runner.configure()
    runner.clear_memo()
    runner.counters.reset()
    trace_store.clear_memo()
    trace_store.counters.reset()
    yield
    runner.configure(**previous)
    runner.clear_memo()
    runner.counters.reset()
    trace_store.clear_memo()
    trace_store.counters.reset()


class TestCacheKey:
    def test_identical_points_hash_identically(self):
        assert runner.cache_key(tiny_point()) == runner.cache_key(tiny_point())

    def test_key_is_hex_sha256(self):
        key = runner.cache_key(tiny_point())
        assert len(key) == 64
        int(key, 16)

    @pytest.mark.parametrize(
        "variant",
        [
            tiny_point(seed=2),
            tiny_point(ops=OPS + 1),
            tiny_point(workload="mix"),
            tiny_point(kind=DirectoryKind.SPARSE),
            tiny_point(ratio=0.5),
            tiny_point(dir_ways=1),
        ],
    )
    def test_any_changed_field_changes_key(self, variant):
        assert runner.cache_key(variant) != runner.cache_key(tiny_point())

    def test_protocol_changes_key(self):
        mesi = runner.SweepPoint("mix", make_config(), OPS, 1)
        moesi = runner.SweepPoint("mix", make_config(moesi=True), OPS, 1)
        assert runner.cache_key(mesi) != runner.cache_key(moesi)

    def test_code_version_changes_key(self, monkeypatch):
        before = runner.cache_key(tiny_point())
        monkeypatch.setattr(runner, "CODE_VERSION", runner.CODE_VERSION + 1)
        assert runner.cache_key(tiny_point()) != before

    def test_key_stable_across_processes(self):
        """The same parameterization hashes identically in a fresh process."""
        program = (
            "from repro.analysis import runner\n"
            "from repro.analysis.experiments import make_config\n"
            "from repro.common.config import DirectoryKind\n"
            "point = runner.SweepPoint("
            "'mix', make_config(DirectoryKind.STASH, 0.125, seed=3), 500, 3)\n"
            "print(runner.cache_key(point))\n"
        )
        src = Path(runner.__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        child = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, timeout=60, env=env,
        )
        assert child.returncode == 0, child.stderr
        local = runner.cache_key(
            runner.SweepPoint(
                "mix", make_config(DirectoryKind.STASH, 0.125, seed=3), 500, 3
            )
        )
        assert child.stdout.strip() == local


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        point = tiny_point()
        [cold] = runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        assert runner.counters.computed == 1
        runner.clear_memo()
        [warm] = runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        assert runner.counters.disk_hits == 1
        assert runner.counters.computed == 1  # no re-simulation
        assert warm == cold

    def test_memo_layer_above_disk(self, tmp_path):
        point = tiny_point()
        runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        assert runner.counters.memo_hits == 1
        assert runner.counters.disk_hits == 0

    def test_duplicate_points_computed_once(self, tmp_path):
        point = tiny_point()
        results = runner.run_points(
            [point, point, point], cache_dir=tmp_path, cache_enabled=True
        )
        assert runner.counters.computed == 1
        assert results[0] == results[1] == results[2]

    def test_cache_disabled_writes_nothing(self, tmp_path):
        runner.run_points([tiny_point()], cache_dir=tmp_path, cache_enabled=False)
        assert not list(tmp_path.glob("*.json"))

    @pytest.mark.parametrize(
        "corruption",
        [
            b"",                                # empty file
            b"not json at all {{{",             # garbage
            b'{"cache_schema": 999}',           # wrong wrapper version
            b'{"truncated": ',                  # partial write
        ],
    )
    def test_corrupt_entry_recomputed_not_crashed(self, tmp_path, corruption):
        point = tiny_point()
        [first] = runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        cache = runner.DiskCache(tmp_path)
        path = cache.path_for(runner.cache_key(point))
        path.write_bytes(corruption)
        runner.clear_memo()
        [again] = runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        assert again == first
        assert runner.counters.computed == 2  # recomputed after the corruption
        assert runner.counters.corrupt_entries >= 1
        assert not path.exists() or json.loads(path.read_text())  # repaired

    def test_key_mismatch_inside_wrapper_rejected(self, tmp_path):
        point = tiny_point()
        runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        cache = runner.DiskCache(tmp_path)
        key = runner.cache_key(point)
        wrapper = json.loads(cache.path_for(key).read_text())
        wrapper["key"] = "0" * 64
        cache.path_for(key).write_text(json.dumps(wrapper))
        assert cache.load(key) is None

    def test_clear_counts_entries(self, tmp_path):
        for seed in (1, 2, 3):
            runner.run_points(
                [tiny_point(seed=seed)], cache_dir=tmp_path, cache_enabled=True
            )
        assert runner.DiskCache(tmp_path).clear() == 3
        assert not list(tmp_path.glob("*.json"))


class TestParallel:
    def test_parallel_matches_serial(self, tmp_path):
        points = [tiny_point(seed=seed) for seed in (1, 2, 3, 4)]
        serial = runner.run_points(points, workers=1, cache_enabled=False)
        runner.clear_memo()
        parallel = runner.run_points(points, workers=2, cache_enabled=False)
        assert parallel == serial
        assert runner.counters.parallel_batches == 1

    def test_parallel_preserves_input_order(self):
        points = [tiny_point(seed=seed) for seed in (5, 6)]
        results = runner.run_points(points, workers=2, cache_enabled=False)
        assert [r.config.seed for r in results] == [7, 7]  # tiny_config pins seed=7
        assert results[0] != results[1]  # different trace seeds, different runs

    def test_single_pending_point_stays_serial(self):
        runner.run_points([tiny_point()], workers=4, cache_enabled=False)
        assert runner.counters.parallel_batches == 0

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process support here")

        from repro.analysis import dispatch

        monkeypatch.setattr(dispatch, "ProcessPoolExecutor", BrokenPool)
        points = [tiny_point(seed=seed) for seed in (1, 2)]
        results = runner.run_points(points, workers=2, cache_enabled=False)
        assert len(results) == 2 and all(results)
        assert runner.counters.parallel_fallbacks == 1


class TestBatchedScheduling:
    def sweep_points(self):
        """A 2-workload x 2-kind x 2-ratio sweep: 8 points, 2 trace keys."""
        return [
            tiny_point(workload=workload, kind=kind, ratio=ratio)
            for workload in ("blackscholes-like", "mix")
            for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH)
            for ratio in (1.0, 0.5)
        ]

    def test_plan_groups_by_trace_key_and_stays_deterministic(self):
        points = self.sweep_points()
        plan = runner._plan_batches(points, workers=2, batch_size=0)
        assert sorted(i for batch in plan for i in batch) == list(range(len(points)))
        assert plan == runner._plan_batches(points, workers=2, batch_size=0)
        # Even split: 8 points over 2 workers -> 2 batches of 4, each a
        # single trace key (points interleave workloads; the plan regroups).
        assert [len(batch) for batch in plan] == [4, 4]
        for batch in plan:
            keys = {points[i].trace_memo_key for i in batch}
            assert len(keys) == 1

    def test_batch_size_one_is_per_point_dispatch(self):
        points = self.sweep_points()
        plan = runner._plan_batches(points, workers=2, batch_size=1)
        assert [len(batch) for batch in plan] == [1] * len(points)

    def test_batched_parallel_matches_serial(self):
        points = self.sweep_points()
        serial = runner.run_points(points, workers=1, cache_enabled=False)
        runner.clear_memo()
        batched = runner.run_points(
            points, workers=2, cache_enabled=False, batch_size=3
        )
        assert batched == serial
        assert runner.counters.parallel_batches == 1
        assert runner.counters.dispatches == 3  # ceil(8 / 3) dispatch units

    def test_sweep_generates_each_workload_exactly_once(self, tmp_path):
        """kinds x ratios over N workloads -> exactly N trace generations."""
        workloads = ["blackscholes-like", "swaptions-like", "bodytrack-like",
                     "fluidanimate-like", "canneal-like", "mix"]
        kinds = [DirectoryKind.SPARSE, DirectoryKind.CUCKOO, DirectoryKind.SCD,
                 DirectoryKind.STASH, DirectoryKind.IDEAL]
        ratios = [2.0, 1.0, 0.5, 0.25, 0.125, 0.0625]
        points = [
            tiny_point(workload=w, ops=40, kind=k, ratio=r)
            for k in kinds for r in ratios for w in workloads
        ]
        assert len(points) == 5 * 6 * 6
        runner.run_points(points, cache_dir=tmp_path, cache_enabled=False)
        assert trace_store.counters.generated == len(workloads)
        assert trace_store.counters.memo_hits >= len(points) - len(workloads)
        # The spool holds exactly one file per workload.
        spool = trace_store.TraceStore(runner.trace_spool_root(tmp_path))
        assert spool.stats()["files"] == len(workloads)

    def test_trace_cache_disabled_spools_nothing(self, tmp_path):
        points = [tiny_point(), tiny_point(workload="mix")]
        runner.run_points(
            points, cache_dir=tmp_path, cache_enabled=False,
            trace_cache_enabled=False,
        )
        assert not runner.trace_spool_root(tmp_path).exists()

    def test_spool_serves_fresh_process_memo(self, tmp_path):
        """After one run, a cold memo re-run loads traces from the spool."""
        runner.run_points([tiny_point()], cache_dir=tmp_path, cache_enabled=False)
        runner.clear_memo()
        trace_store.clear_memo()
        trace_store.counters.reset()
        runner.run_points([tiny_point()], cache_dir=tmp_path, cache_enabled=False)
        assert trace_store.counters.disk_hits == 1
        assert trace_store.counters.generated == 0


class TestObservedPoints:
    def observed_point(self, **kwargs):
        from repro.obs import ObsConfig

        return runner.SweepPoint(
            "mix", tiny_config(check_invariants=False), OPS, 1,
            obs=ObsConfig(epoch_interval=64), **kwargs
        )

    def test_observed_stats_match_unobserved_packed_run(self, tmp_path):
        """Observability must not perturb the packed-trace pipeline."""
        plain = runner.SweepPoint("mix", tiny_config(check_invariants=False), OPS, 1)
        [unobserved] = runner.run_points(
            [plain], cache_dir=tmp_path, cache_enabled=True
        )
        [observed] = runner.run_points(
            [self.observed_point()], cache_dir=tmp_path, cache_enabled=True
        )
        assert observed.stats == unobserved.stats
        assert observed.cycles_per_core == unobserved.cycles_per_core

    def test_observed_bypasses_result_caches_but_shares_traces(self, tmp_path):
        point = self.observed_point()
        runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        runner.run_points([point], cache_dir=tmp_path, cache_enabled=True)
        # Re-simulated both times (no result memo/disk hit)...
        assert runner.counters.computed == 2
        assert runner.counters.memo_hits == 0
        assert runner.counters.disk_hits == 0
        assert not runner._MEMO
        # ...but the input trace was generated exactly once and spooled.
        assert trace_store.counters.generated == 1
        spool = trace_store.TraceStore(runner.trace_spool_root(tmp_path))
        assert spool.stats()["files"] == 1


class TestExperimentsIntegration:
    def test_simulate_uses_both_layers(self, tmp_path):
        runner.configure(cache_dir=tmp_path)
        config = tiny_config(check_invariants=False)
        first = exp.simulate("mix", config, OPS, 1)
        runner.clear_memo()
        second = exp.simulate("mix", config, OPS, 1)
        assert second == first
        assert runner.counters.disk_hits == 1

    def test_clear_cache_clears_disk_too(self, tmp_path):
        runner.configure(cache_dir=tmp_path)
        exp.simulate("mix", tiny_config(check_invariants=False), OPS, 1)
        assert list(Path(tmp_path).glob("*.json"))
        exp.clear_cache()
        assert not list(Path(tmp_path).glob("*.json"))
        assert not runner._MEMO

    def test_clear_cache_clears_trace_spool_and_memo(self, tmp_path):
        runner.configure(cache_dir=tmp_path)
        exp.simulate("mix", tiny_config(check_invariants=False), OPS, 1)
        spool_root = runner.trace_spool_root(tmp_path)
        assert list(spool_root.glob("*.trace"))
        assert trace_store._TRACE_MEMO
        exp.clear_cache()
        assert not list(spool_root.glob("*.trace"))
        assert not trace_store._TRACE_MEMO

    def test_counters_summary_reports_trace_store(self, tmp_path):
        runner.configure(cache_dir=tmp_path)
        exp.simulate("mix", tiny_config(check_invariants=False), OPS, 1)
        text = runner.counters_summary()
        assert "traces" in text
        assert "generated 1" in text
        assert "trace spool    1 files" in text

    def test_memo_shared_with_experiments(self):
        assert exp._RESULT_CACHE is runner._MEMO

    def test_prefetch_populates_memo(self, tmp_path):
        runner.configure(cache_dir=tmp_path)
        config = tiny_config(check_invariants=False)
        exp.prefetch([("mix", config)], OPS, 1)
        assert runner.counters.computed == 1
        exp.simulate("mix", config, OPS, 1)
        assert runner.counters.memo_hits == 1

    def test_counters_summary_renders(self):
        exp.simulate("mix", tiny_config(check_invariants=False), OPS, 1)
        text = runner.counters_summary()
        assert "hit rate" in text
        assert "compute time" in text
