"""Unit tests for table rendering."""

from repro.analysis.tables import format_cell, render_kv, render_table


class TestFormatCell:
    def test_strings_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_ints(self):
        assert format_cell(42) == "42"

    def test_floats_fixed_precision(self):
        assert format_cell(1.23456) == "1.235"

    def test_large_floats_compact(self):
        assert format_cell(123456.0) == "1.23e+05"

    def test_tiny_floats_compact(self):
        assert "e" in format_cell(0.000012)

    def test_nan_rendered_as_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_bool(self):
        assert format_cell(True) == "True"

    def test_zero(self):
        assert format_cell(0.0) == "0.000"


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        text = render_table(["name", "x"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line) for line in lines)) == 1

    def test_title_included(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_render_kv(self):
        text = render_kv([("cores", "16"), ("mesh", "4x4")])
        assert "cores" in text and "4x4" in text
