"""Unit + property tests for the generic set-associative array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import CacheArray
from repro.common.config import CacheConfig
from repro.common.errors import ProtocolError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup


def make_array(sets=4, ways=2, replacement="lru"):
    return CacheArray(
        CacheConfig(sets=sets, ways=ways, replacement=replacement),
        DeterministicRng(1),
        StatGroup("array"),
    )


class TestLookupAllocate:
    def test_miss_then_hit(self):
        array = make_array()
        assert array.lookup(10) is None
        array.allocate(10, state=1)
        block = array.lookup(10)
        assert block is not None
        assert block.addr == 10

    def test_allocate_returns_no_victim_when_room(self):
        array = make_array()
        _, evicted = array.allocate(10, state=1)
        assert evicted is None

    def test_double_allocate_rejected(self):
        array = make_array()
        array.allocate(10, state=1)
        with pytest.raises(ProtocolError):
            array.allocate(10, state=1)

    def test_contains_no_touch(self):
        array = make_array()
        array.allocate(10, state=1)
        assert array.contains(10)
        assert not array.contains(11)


class TestEviction:
    def test_conflict_evicts_lru(self):
        array = make_array(sets=1, ways=2)
        array.allocate(0, state=1)
        array.allocate(1, state=1)
        array.lookup(0)  # 1 becomes LRU
        _, evicted = array.allocate(2, state=1)
        assert evicted is not None
        assert evicted.addr == 1
        assert array.lookup(1) is None
        assert array.lookup(0) is not None

    def test_peek_matches_actual_victim(self):
        array = make_array(sets=1, ways=4)
        for addr in range(4):
            array.allocate(addr, state=1)
        array.lookup(0)
        peeked = array.peek_victim(99)
        _, evicted = array.allocate(99, state=1)
        assert peeked is evicted

    def test_peek_none_when_room(self):
        array = make_array(sets=1, ways=2)
        array.allocate(0, state=1)
        assert array.peek_victim(1) is None

    def test_peek_on_present_block_rejected(self):
        array = make_array()
        array.allocate(3, state=1)
        with pytest.raises(ProtocolError):
            array.peek_victim(3)

    def test_different_sets_do_not_conflict(self):
        array = make_array(sets=4, ways=1)
        for addr in range(4):  # each maps to its own set
            _, evicted = array.allocate(addr, state=1)
            assert evicted is None


class TestRemove:
    def test_remove_returns_block(self):
        array = make_array()
        array.allocate(5, state=2)
        removed = array.remove(5)
        assert removed.addr == 5
        assert array.lookup(5) is None

    def test_remove_absent_is_none(self):
        assert make_array().remove(5) is None

    def test_removed_way_reused(self):
        array = make_array(sets=1, ways=1)
        array.allocate(0, state=1)
        array.remove(0)
        _, evicted = array.allocate(1, state=1)
        assert evicted is None


class TestInspection:
    def test_occupancy_counts(self):
        array = make_array(sets=4, ways=2)
        assert array.occupancy() == 0
        array.allocate(0, state=1)
        array.allocate(1, state=1)
        assert array.occupancy() == 2
        array.remove(0)
        assert array.occupancy() == 1

    def test_iter_blocks_yields_all(self):
        array = make_array(sets=4, ways=2)
        for addr in (0, 1, 4, 5):
            array.allocate(addr, state=1)
        assert {b.addr for b in array.iter_blocks()} == {0, 1, 4, 5}

    def test_set_occupancy(self):
        array = make_array(sets=4, ways=2)
        array.allocate(0, state=1)
        array.allocate(4, state=1)  # same set as 0
        assert array.set_occupancy(0) == 2
        assert array.set_occupancy(1) == 0

    def test_stats_recorded(self):
        stats = StatGroup("array")
        array = CacheArray(CacheConfig(sets=1, ways=1), DeterministicRng(1), stats)
        array.allocate(0, state=1)
        array.allocate(1, state=1)
        array.remove(1)
        assert stats.get("fills") == 2
        assert stats.get("evictions") == 1
        assert stats.get("removals") == 1


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "remove", "lookup"]), st.integers(0, 30)),
        max_size=80,
    ),
    replacement=st.sampled_from(["lru", "plru", "nru", "srrip", "random"]),
)
def test_property_model_equivalence(ops, replacement):
    """The array behaves like a bounded map: presence matches a model that
    tracks fills/removals, and per-set occupancy never exceeds ways."""
    array = make_array(sets=2, ways=2, replacement=replacement)
    model = set()
    for op, addr in ops:
        if op == "alloc":
            if addr in model:
                continue
            _, evicted = array.allocate(addr, state=1)
            if evicted is not None:
                model.discard(evicted.addr)
            model.add(addr)
        elif op == "remove":
            removed = array.remove(addr)
            assert (removed is not None) == (addr in model)
            model.discard(addr)
        else:
            assert (array.lookup(addr) is not None) == (addr in model)
    assert {b.addr for b in array.iter_blocks()} == model
    assert array.occupancy() == len(model)
    for addr in range(31):
        assert array.set_occupancy(addr) <= 2
