"""Unit tests for the cache-line metadata record."""

from repro.cache.block import CacheBlock, copy_block


class TestCacheBlock:
    def test_defaults(self):
        block = CacheBlock(addr=0x10, tag=0x1, state=2)
        assert block.addr == 0x10
        assert block.state == 2
        assert not block.dirty
        assert not block.stash
        assert block.version == 0

    def test_slots_prevent_stray_attributes(self):
        block = CacheBlock(0, 0, 0)
        try:
            block.bogus = 1
        except AttributeError:
            return
        raise AssertionError("__slots__ should reject unknown attributes")

    def test_repr_shows_flags(self):
        block = CacheBlock(0x40, 1, 3, dirty=True)
        block.stash = True
        text = repr(block)
        assert "dirty" in text and "stash" in text


class TestCopyBlock:
    def test_copy_none(self):
        assert copy_block(None) is None

    def test_copy_is_deep_snapshot(self):
        block = CacheBlock(0x40, 1, 3, dirty=True)
        block.stash = True
        block.version = 7
        clone = copy_block(block)
        assert clone is not block
        assert (clone.addr, clone.tag, clone.state) == (0x40, 1, 3)
        assert clone.dirty and clone.stash and clone.version == 7
        block.version = 8
        assert clone.version == 7
