"""Unit + integration tests for the private L1+L2 hierarchy."""

import pytest
from dataclasses import replace

from repro.cache.hierarchy import PrivateHierarchy
from repro.common.config import CacheConfig, DirectoryKind
from repro.common.errors import ConfigError, ProtocolError
from repro.common.mesi import MesiState
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.suite import build_workload
from tests.conftest import tiny_config


def make_hierarchy(l1_sets=2, l1_ways=2, l2_sets=4, l2_ways=2):
    return PrivateHierarchy(
        core_id=0,
        l1_config=CacheConfig(sets=l1_sets, ways=l1_ways),
        l2_config=CacheConfig(sets=l2_sets, ways=l2_ways),
        rng=DeterministicRng(1),
        stats=StatGroup("private"),
    )


class TestValidation:
    def test_l2_must_cover_l1(self):
        with pytest.raises(ConfigError):
            make_hierarchy(l1_sets=4, l1_ways=2, l2_sets=2, l2_ways=2)

    def test_block_sizes_must_match(self):
        with pytest.raises(ConfigError):
            PrivateHierarchy(
                0,
                CacheConfig(sets=2, ways=2, block_bytes=64),
                CacheConfig(sets=4, ways=2, block_bytes=128),
                DeterministicRng(1),
                StatGroup("p"),
            )


class TestFillAndAccess:
    def test_fill_lands_in_both_levels(self):
        h = make_hierarchy()
        h.fill(5, MesiState.EXCLUSIVE, version=1)
        block, level = h.access_block(5)
        assert level == "l1"
        assert block.state == MesiState.EXCLUSIVE
        h.check_internal_inclusion()

    def test_l2_promotion_after_l1_eviction(self):
        h = make_hierarchy(l1_sets=1, l1_ways=1, l2_sets=4, l2_ways=2)
        h.fill(0, MesiState.EXCLUSIVE, 0)
        h.fill(1, MesiState.EXCLUSIVE, 0)  # L1 victim 0 demoted to L2-only
        assert h.l1_occupancy() == 1
        block, level = h.access_block(0)
        assert level == "l2"
        assert block is not None
        assert h.stats.get("l2_promotions") == 1
        h.check_internal_inclusion()

    def test_miss_when_absent_everywhere(self):
        h = make_hierarchy()
        block, level = h.access_block(9)
        assert block is None and level == "miss"

    def test_fill_invalid_rejected(self):
        with pytest.raises(ProtocolError):
            make_hierarchy().fill(5, MesiState.INVALID, 0)


class TestDirtyDemotion:
    def test_dirty_l1_victim_folds_into_l2(self):
        h = make_hierarchy(l1_sets=1, l1_ways=1, l2_sets=4, l2_ways=2)
        h.fill(0, MesiState.MODIFIED, version=7)
        h.fill(1, MesiState.EXCLUSIVE, 0)  # demotes dirty 0
        l2_view = h.probe(0, touch=False)
        assert l2_view.dirty and l2_view.version == 7
        h.check_internal_inclusion()

    def test_write_version_visible_through_probe(self):
        h = make_hierarchy()
        h.fill(0, MesiState.EXCLUSIVE, version=1)
        block, _ = h.access_block(0)
        h.upgrade_to_modified(0)
        block.version = 42  # the controller writes the L1 copy
        assert h.probe(0, touch=False).version == 42  # probe syncs down


class TestCoherenceOps:
    def test_invalidate_clears_both_levels(self):
        h = make_hierarchy()
        h.fill(0, MesiState.MODIFIED, version=3)
        removed = h.invalidate(0)
        assert removed.dirty and removed.version == 3
        assert h.probe(0, touch=False) is None
        assert h.l1_occupancy() == 0

    def test_downgrade_hits_both_levels(self):
        h = make_hierarchy()
        h.fill(0, MesiState.MODIFIED, version=3)
        h.downgrade_to_shared(0)
        assert h.state_of(0) is MesiState.SHARED
        block, _ = h.access_block(0)
        assert block.state == MesiState.SHARED

    def test_upgrade_hits_both_levels(self):
        h = make_hierarchy(l1_sets=1, l1_ways=1, l2_sets=4, l2_ways=2)
        h.fill(0, MesiState.SHARED, 0)
        h.upgrade_to_modified(0)
        assert h.state_of(0) is MesiState.MODIFIED

    def test_upgrade_uncached_rejected(self):
        with pytest.raises(ProtocolError):
            make_hierarchy().upgrade_to_modified(0)


class TestVictims:
    def test_peek_victim_is_l2_victim_with_merged_dirty(self):
        h = make_hierarchy(l1_sets=1, l1_ways=1, l2_sets=1, l2_ways=2)
        h.fill(0, MesiState.MODIFIED, version=5)
        h.fill(1, MesiState.EXCLUSIVE, 0)
        victim = h.peek_fill_victim(2)
        assert victim is not None
        if victim.addr == 0:
            assert victim.dirty and victim.version == 5

    def test_occupancy_views(self):
        h = make_hierarchy(l1_sets=1, l1_ways=2, l2_sets=4, l2_ways=2)
        for addr in range(4):
            h.fill(addr, MesiState.EXCLUSIVE, 0)
        assert h.occupancy() == 4
        assert h.l1_occupancy() == 2


class TestEndToEnd:
    @pytest.mark.parametrize("kind", [DirectoryKind.SPARSE, DirectoryKind.STASH])
    def test_full_system_with_l2_invariants(self, kind):
        config = replace(
            tiny_config(kind, ratio=0.5, l1_sets=2, l1_ways=2),
            l2=CacheConfig(sets=4, ways=2),
        )
        system = build_system(config)
        trace = build_workload("mix", 4, 300, seed=5)
        Simulator(system, invariant_interval=128).run(trace)
        for private in system.l1s:
            private.check_internal_inclusion()

    def test_directory_sized_by_l2(self):
        config = replace(
            tiny_config(ratio=1.0, l1_sets=2, l1_ways=2),
            l2=CacheConfig(sets=8, ways=2),
        )
        # R=1 against the tracked level: 4 cores x 16 L2 blocks.
        assert config.directory_entries == 64
        assert config.private_blocks_per_core == 16

    def test_l2_hits_counted_and_charged(self):
        config = replace(
            tiny_config(DirectoryKind.STASH, ratio=2.0, l1_sets=1, l1_ways=1),
            l2=CacheConfig(sets=4, ways=2),
        )
        system = build_system(config)
        system.access(0, 0, is_write=False)
        system.access(0, 1, is_write=False)   # L1 victim 0 -> L2 only
        latency = system.access(0, 0, is_write=False)  # L2 hit + promote
        timing = config.timing
        assert latency == timing.l1_hit + timing.l2_hit
        assert system.stats.child("protocol").get("l2_hits") == 1
        system.check_invariants()

    def test_describe_mentions_l2(self):
        config = replace(tiny_config(), l2=CacheConfig(sets=8, ways=2))
        assert "KiB" in config.describe()["L2 (per core)"]
        assert tiny_config().describe()["L2 (per core)"] == "none"
