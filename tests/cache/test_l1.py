"""Unit tests for the private L1 cache wrapper."""

import pytest

from repro.cache.l1 import L1Cache
from repro.common.config import CacheConfig
from repro.common.errors import ProtocolError
from repro.common.mesi import MesiState
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup


def make_l1(sets=2, ways=2):
    return L1Cache(
        core_id=0,
        config=CacheConfig(sets=sets, ways=ways),
        rng=DeterministicRng(1),
        stats=StatGroup("l1"),
    )


class TestFillProbe:
    def test_fill_then_probe(self):
        l1 = make_l1()
        l1.fill(7, MesiState.EXCLUSIVE, version=3)
        block = l1.probe(7)
        assert block.state == MesiState.EXCLUSIVE
        assert block.version == 3
        assert not block.dirty

    def test_fill_modified_sets_dirty(self):
        l1 = make_l1()
        block = l1.fill(7, MesiState.MODIFIED, version=1)
        assert block.dirty

    def test_fill_invalid_rejected(self):
        with pytest.raises(ProtocolError):
            make_l1().fill(7, MesiState.INVALID, version=0)

    def test_state_of_absent_is_invalid(self):
        assert make_l1().state_of(99) is MesiState.INVALID

    def test_state_of_present(self):
        l1 = make_l1()
        l1.fill(7, MesiState.SHARED, version=0)
        assert l1.state_of(7) is MesiState.SHARED


class TestTransitions:
    def test_upgrade_to_modified(self):
        l1 = make_l1()
        l1.fill(7, MesiState.SHARED, version=0)
        block = l1.upgrade_to_modified(7)
        assert block.state == MesiState.MODIFIED
        assert block.dirty

    def test_upgrade_uncached_rejected(self):
        with pytest.raises(ProtocolError):
            make_l1().upgrade_to_modified(7)

    def test_downgrade_to_shared_clears_dirty(self):
        l1 = make_l1()
        l1.fill(7, MesiState.MODIFIED, version=2)
        block = l1.downgrade_to_shared(7)
        assert block.state == MesiState.SHARED
        assert not block.dirty

    def test_downgrade_uncached_rejected(self):
        with pytest.raises(ProtocolError):
            make_l1().downgrade_to_shared(7)

    def test_invalidate_returns_block(self):
        l1 = make_l1()
        l1.fill(7, MesiState.MODIFIED, version=4)
        removed = l1.invalidate(7)
        assert removed.dirty and removed.version == 4
        assert l1.probe(7) is None

    def test_invalidate_absent_returns_none(self):
        assert make_l1().invalidate(7) is None


class TestEvictionMechanics:
    def test_peek_fill_victim_when_set_full(self):
        l1 = make_l1(sets=1, ways=2)
        l1.fill(0, MesiState.EXCLUSIVE, 0)
        l1.fill(1, MesiState.EXCLUSIVE, 0)
        victim = l1.peek_fill_victim(2)
        assert victim.addr in (0, 1)

    def test_occupancy_and_iter(self):
        l1 = make_l1()
        l1.fill(0, MesiState.SHARED, 0)
        l1.fill(1, MesiState.SHARED, 0)
        assert l1.occupancy() == 2
        assert {b.addr for b in l1.iter_blocks()} == {0, 1}
