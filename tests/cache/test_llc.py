"""Unit tests for the shared LLC, especially the stash bit."""

import pytest

from repro.cache.llc import SharedLLC
from repro.common.config import CacheConfig
from repro.common.errors import ProtocolError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup


def make_llc(sets=4, ways=2, banks=4):
    return SharedLLC(
        CacheConfig(sets=sets, ways=ways),
        num_banks=banks,
        rng=DeterministicRng(1),
        stats=StatGroup("llc"),
    )


class TestBasics:
    def test_fill_probe(self):
        llc = make_llc()
        llc.fill(10, version=2)
        block = llc.probe(10)
        assert block.version == 2 and not block.dirty

    def test_fill_dirty(self):
        llc = make_llc()
        assert llc.fill(10, version=2, dirty=True).dirty

    def test_bank_interleaving(self):
        llc = make_llc(banks=4)
        assert [llc.bank_of(b) for b in range(4)] == [0, 1, 2, 3]

    def test_invalidate(self):
        llc = make_llc()
        llc.fill(10, version=0)
        removed = llc.invalidate(10)
        assert removed.addr == 10
        assert not llc.contains(10)


class TestStashBit:
    def test_set_and_read(self):
        llc = make_llc()
        llc.fill(10, version=0)
        assert not llc.stash_bit(10)
        llc.set_stash_bit(10)
        assert llc.stash_bit(10)

    def test_set_on_non_resident_rejected(self):
        with pytest.raises(ProtocolError):
            make_llc().set_stash_bit(10)

    def test_clear(self):
        llc = make_llc()
        llc.fill(10, version=0)
        llc.set_stash_bit(10)
        llc.clear_stash_bit(10)
        assert not llc.stash_bit(10)

    def test_clear_absent_is_noop(self):
        make_llc().clear_stash_bit(10)  # must not raise

    def test_stash_bit_of_absent_line_is_false(self):
        assert not make_llc().stash_bit(10)

    def test_set_idempotent_stats(self):
        llc = make_llc()
        llc.fill(10, version=0)
        llc.set_stash_bit(10)
        llc.set_stash_bit(10)
        assert llc.stats.get("stash_bits_set") == 1

    def test_stash_bit_count(self):
        llc = make_llc()
        llc.fill(1, version=0)
        llc.fill(2, version=0)
        llc.set_stash_bit(1)
        assert llc.stash_bit_count() == 1


class TestWriteback:
    def test_writeback_marks_dirty_and_bumps_version(self):
        llc = make_llc()
        llc.fill(10, version=1)
        block = llc.write_back(10, version=5)
        assert block.dirty and block.version == 5

    def test_writeback_never_regresses_version(self):
        llc = make_llc()
        llc.fill(10, version=9)
        assert llc.write_back(10, version=5).version == 9

    def test_writeback_to_absent_violates_inclusion(self):
        with pytest.raises(ProtocolError):
            make_llc().write_back(10, version=1)

    def test_occupancy(self):
        llc = make_llc()
        llc.fill(1, version=0)
        llc.fill(2, version=0)
        assert llc.occupancy() == 2
