"""Unit + property tests for the replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.cache.replacement import (
    LruPolicy,
    NruPolicy,
    RandomPolicy,
    SrripPolicy,
    TreePlruPolicy,
    make_policy,
    policy_names,
)

ALL_NAMES = ["lru", "plru", "nru", "srrip", "random"]


class TestFactory:
    def test_names_listed(self):
        assert set(policy_names()) == set(ALL_NAMES)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_make_each(self, name):
        policy = make_policy(name, 4, DeterministicRng(1))
        policy.on_fill(0)
        assert 0 <= policy.victim() < 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("belady", 4, DeterministicRng(1))

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigError):
            LruPolicy(0)


class TestLru:
    def test_victim_is_least_recent(self):
        lru = LruPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        lru.on_access(0)  # 1 is now least recent
        assert lru.victim() == 1

    def test_stack_order(self):
        lru = LruPolicy(3)
        for way in (0, 1, 2):
            lru.on_fill(way)
        lru.on_access(0)
        lru.on_access(1)
        assert lru.victim() == 2

    def test_restricted_candidates(self):
        lru = LruPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        lru.on_access(0)
        # 1 is global LRU, but restricted to {2, 3} it must pick 2.
        assert lru.victim([2, 3]) == 2

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=60))
    def test_victim_never_most_recent(self, accesses):
        lru = LruPolicy(8)
        for way in range(8):
            lru.on_fill(way)
        for way in accesses:
            lru.on_access(way)
        assert lru.victim() != accesses[-1]


class TestTreePlru:
    def test_victim_avoids_recent(self):
        plru = TreePlruPolicy(4)
        for way in range(4):
            plru.on_fill(way)
        plru.on_access(2)
        assert plru.victim() != 2

    def test_non_power_of_two_ways(self):
        plru = TreePlruPolicy(3)
        for way in range(3):
            plru.on_fill(way)
        assert 0 <= plru.victim() < 3

    def test_restricted_candidates_honored(self):
        plru = TreePlruPolicy(4)
        for way in range(4):
            plru.on_fill(way)
        assert plru.victim([1]) == 1


class TestNru:
    def test_prefers_unreferenced(self):
        nru = NruPolicy(4)
        for way in range(4):
            nru.on_fill(way)
        # All filled -> all referenced -> bulk clear keeps only last.
        assert nru.victim() != 3

    def test_bulk_clear_on_saturation(self):
        nru = NruPolicy(2)
        nru.on_access(0)
        nru.on_access(1)  # saturates: clears, keeps 1
        assert nru.victim() == 0


class TestSrrip:
    def test_hit_promotes(self):
        srrip = SrripPolicy(4)
        for way in range(4):
            srrip.on_fill(way)
        srrip.on_access(1)
        assert srrip.victim() != 1

    def test_ages_until_victim_found(self):
        srrip = SrripPolicy(2)
        srrip.on_access(0)
        srrip.on_access(1)
        assert srrip.victim() in (0, 1)  # aging loop terminates

    def test_restricted_candidates(self):
        srrip = SrripPolicy(4)
        for way in range(4):
            srrip.on_fill(way)
        srrip.on_access(0)
        assert srrip.victim([0, 2]) in (0, 2)


class TestRandom:
    def test_uniformish_and_in_range(self):
        policy = RandomPolicy(4, DeterministicRng(3))
        picks = {policy.victim() for _ in range(100)}
        assert picks == {0, 1, 2, 3}

    def test_respects_candidates(self):
        policy = RandomPolicy(8, DeterministicRng(3))
        for _ in range(50):
            assert policy.victim([2, 5]) in (2, 5)


@pytest.mark.parametrize("name", ALL_NAMES)
@settings(max_examples=25)
@given(data=st.data())
def test_property_victim_always_valid(name, data):
    """Any access history: victim stays in range / in candidates."""
    policy = make_policy(name, 4, DeterministicRng(11))
    for way in range(4):
        policy.on_fill(way)
    for way in data.draw(st.lists(st.integers(0, 3), max_size=30)):
        policy.on_access(way)
    assert 0 <= policy.victim() < 4
    candidates = data.draw(
        st.lists(st.integers(0, 3), min_size=1, max_size=4, unique=True)
    )
    assert policy.victim(candidates) in candidates
