"""Unit tests for the optional home-bank contention model."""

from dataclasses import replace

from repro.common.config import DirectoryKind, TimingConfig
from repro.sim.system import build_system
from tests.conftest import tiny_config


def contended_config(occupancy=50):
    config = tiny_config(DirectoryKind.STASH, ratio=2.0)
    return replace(config, timing=TimingConfig(home_occupancy=occupancy))


class TestHomeContention:
    def test_disabled_by_default(self):
        system = build_system(tiny_config())
        for core in range(4):
            system.access(core, 0x100 + core * 4, is_write=False, now=0.0)
        assert system.stats.child("protocol").get("home_bank_waits") == 0

    def test_same_bank_same_time_queues(self):
        system = build_system(contended_config(occupancy=50))
        # Blocks 0 and 4 share home bank 0 (4 banks); both arrive at t=0.
        first = system.access(0, 0, is_write=False, now=0.0)
        second = system.access(1, 4, is_write=False, now=0.0)
        assert second > first - 50  # second waited out the occupancy
        assert system.stats.child("protocol").get("home_bank_waits") == 1
        assert system.stats.child("protocol").get("home_bank_wait_cycles") == 50

    def test_different_banks_no_wait(self):
        system = build_system(contended_config(occupancy=50))
        system.access(0, 0, is_write=False, now=0.0)  # bank 0
        system.access(1, 1, is_write=False, now=0.0)  # bank 1
        assert system.stats.child("protocol").get("home_bank_waits") == 0

    def test_late_arrival_no_wait(self):
        system = build_system(contended_config(occupancy=50))
        system.access(0, 0, is_write=False, now=0.0)
        system.access(1, 4, is_write=False, now=1000.0)  # bank free again
        assert system.stats.child("protocol").get("home_bank_waits") == 0

    def test_invariants_hold_under_contention(self):
        system = build_system(contended_config(occupancy=10))
        for i in range(300):
            system.access(i % 4, (i * 7) % 32, is_write=i % 3 == 0, now=float(i))
        system.check_invariants()
