"""Direct unit tests of home-controller internals.

The protocol tests exercise these paths through full access flows; these
tests pin the *unit* behaviours — version minting, home mapping, LLC
eviction bookkeeping, memory-version persistence — so a regression points
at the exact mechanism.
"""

from repro.common.config import DirectoryKind
from repro.common.mesi import MesiState
from repro.sim.system import build_system
from tests.conftest import tiny_config


def make_system(kind=DirectoryKind.STASH, **kwargs):
    return build_system(tiny_config(kind, **kwargs))


class TestVersioning:
    def test_mint_version_monotonic_and_recorded(self):
        system = make_system()
        home = system.home
        v1 = home.mint_version(0x10)
        v2 = home.mint_version(0x20)
        v3 = home.mint_version(0x10)
        assert v1 < v2 < v3
        assert home.latest_version[0x10] == v3
        assert home.latest_version[0x20] == v2

    def test_writes_advance_latest(self):
        system = make_system()
        system.access(0, 5, is_write=True)
        first = system.home.latest_version[5]
        system.access(1, 5, is_write=True)
        assert system.home.latest_version[5] > first


class TestHomeMapping:
    def test_home_tile_matches_llc_bank(self):
        system = make_system(num_cores=4)
        for addr in range(16):
            assert system.home.home_tile(addr) == system.llc.bank_of(addr)
            assert 0 <= system.home.home_tile(addr) < 4


class TestMemoryVersionPersistence:
    def test_dirty_llc_eviction_lands_in_memory_version(self):
        # Tiny LLC: 2 sets x 2 ways; force eviction of a written block.
        system = make_system(llc_sets=2, llc_ways=2, num_cores=1)
        system.access(0, 0, is_write=True)
        latest = system.home.latest_version[0]
        # Evict block 0 from its own L1 first so its data reaches the LLC.
        for addr in (4, 8, 12, 16):
            system.access(0, addr, is_write=False)
        # Thrash LLC set 0 (even blocks) until block 0 leaves the chip.
        filler = 20
        while system.llc.contains(0):
            system.access(0, filler, is_write=False)
            filler += 2
        assert system.home.memory_version[0] == latest
        system.check_invariants()

    def test_refetch_restores_latest_from_memory(self):
        system = make_system(llc_sets=2, llc_ways=2, num_cores=1)
        system.access(0, 0, is_write=True)
        latest = system.home.latest_version[0]
        filler = 4
        while system.llc.contains(0):
            system.access(0, filler, is_write=False)
            filler += 2
        system.access(0, 0, is_write=False)  # refetch from memory
        assert system.l1s[0].probe(0, touch=False).version == latest
        system.check_invariants()


class TestGrantShapes:
    def test_read_miss_grant_exclusive(self):
        system = make_system()
        grant = None
        # Drive handle_miss directly (the L1 controller normally does).
        grant = system.home.handle_miss(0, 7, is_write=False)
        assert grant.state is MesiState.EXCLUSIVE
        assert grant.latency > 0

    def test_write_miss_grant_modified(self):
        system = make_system()
        grant = system.home.handle_miss(0, 7, is_write=True)
        assert grant.state is MesiState.MODIFIED


class TestDirectoryRecency:
    def test_lookup_touch_protects_entry_from_eviction(self):
        """Directory lookups must update entry recency: the LRU victim is
        the least-recently *requested* block."""
        system = build_system(
            tiny_config(DirectoryKind.SPARSE, entries_override=4, dir_ways=2)
        )
        system.access(0, 0, is_write=False)
        system.access(0, 2, is_write=False)
        system.access(1, 0, is_write=False)   # touches entry 0
        system.access(0, 4, is_write=False)   # conflict: evicts entry 2
        assert system.directory.lookup(0, touch=False) is not None
        assert system.directory.lookup(2, touch=False) is None


class TestCoverageAttribution:
    def test_coverage_miss_counted_once_per_invalidation(self):
        system = build_system(
            tiny_config(DirectoryKind.SPARSE, entries_override=4, dir_ways=2)
        )
        # Core 0 caches blocks 0, 2; conflict on 4 invalidates one of them.
        for addr in (0, 2, 4):
            system.access(0, addr, is_write=False)
        lost = next(
            a for a in (0, 2) if system.l1s[0].probe(a, touch=False) is None
        )
        stats = system.stats.child("protocol")
        assert stats.get("coverage_misses") == 0
        system.access(0, lost, is_write=False)   # the coverage miss
        assert stats.get("coverage_misses") == 1
        system.access(0, lost, is_write=False)   # plain hit now
        assert stats.get("coverage_misses") == 1
