"""Unit tests for the invariant checkers themselves.

Each test constructs a *broken* state by hand and asserts the matching
checker raises — the checkers are only useful if they actually catch bugs.
"""

import pytest

from repro.cache.l1 import L1Cache
from repro.cache.llc import SharedLLC
from repro.coherence.invariants import (
    check_data_values,
    check_directory_inclusion,
    check_entries_llc_resident,
    check_llc_inclusion,
    check_swmr,
)
from repro.common.config import CacheConfig, DirectoryConfig, DirectoryKind
from repro.common.errors import InvariantViolation
from repro.common.mesi import MesiState
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.directory.ideal import IdealDirectory


def make_parts(num_cores=2):
    stats = StatGroup("root")
    l1s = [
        L1Cache(core, CacheConfig(sets=2, ways=2), DeterministicRng(core), stats.child(f"l1.{core}"))
        for core in range(num_cores)
    ]
    llc = SharedLLC(CacheConfig(sets=16, ways=4), num_cores, DeterministicRng(9), stats.child("llc"))
    directory = IdealDirectory(
        DirectoryConfig(kind=DirectoryKind.IDEAL), num_cores, stats.child("dir")
    )
    return l1s, llc, directory


class TestSwmr:
    def test_ok_single_modified(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.MODIFIED, 1)
        check_swmr(l1s)

    def test_ok_many_shared(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.SHARED, 0)
        l1s[1].fill(5, MesiState.SHARED, 0)
        check_swmr(l1s)

    def test_modified_plus_shared_raises(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.MODIFIED, 1)
        l1s[1].fill(5, MesiState.SHARED, 0)
        with pytest.raises(InvariantViolation):
            check_swmr(l1s)

    def test_two_exclusives_raise(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.EXCLUSIVE, 0)
        l1s[1].fill(5, MesiState.EXCLUSIVE, 0)
        with pytest.raises(InvariantViolation):
            check_swmr(l1s)


class TestLlcInclusion:
    def test_ok_when_resident(self):
        l1s, llc, _ = make_parts()
        llc.fill(5, 0)
        l1s[0].fill(5, MesiState.SHARED, 0)
        check_llc_inclusion(l1s, llc)

    def test_missing_llc_line_raises(self):
        l1s, llc, _ = make_parts()
        l1s[0].fill(5, MesiState.SHARED, 0)
        with pytest.raises(InvariantViolation):
            check_llc_inclusion(l1s, llc)


class TestDirectoryInclusion:
    def test_strict_raises_on_untracked(self):
        l1s, llc, directory = make_parts()
        llc.fill(5, 0)
        l1s[0].fill(5, MesiState.SHARED, 0)
        with pytest.raises(InvariantViolation):
            check_directory_inclusion(l1s, llc, directory, relaxed=False)

    def test_relaxed_allows_hidden(self):
        l1s, llc, directory = make_parts()
        llc.fill(5, 0)
        llc.set_stash_bit(5)
        l1s[0].fill(5, MesiState.SHARED, 0)
        check_directory_inclusion(l1s, llc, directory, relaxed=True)

    def test_relaxed_raises_without_stash_bit(self):
        l1s, llc, directory = make_parts()
        llc.fill(5, 0)
        l1s[0].fill(5, MesiState.SHARED, 0)
        with pytest.raises(InvariantViolation):
            check_directory_inclusion(l1s, llc, directory, relaxed=True)


class TestEntriesResident:
    def test_ok(self):
        _, llc, directory = make_parts()
        llc.fill(5, 0)
        directory.allocate(5)
        check_entries_llc_resident(directory, llc)

    def test_entry_for_evicted_line_raises(self):
        _, llc, directory = make_parts()
        directory.allocate(5)
        with pytest.raises(InvariantViolation):
            check_entries_llc_resident(directory, llc)


class TestDataValues:
    def test_ok_all_latest(self):
        l1s, llc, _ = make_parts()
        llc.fill(5, version=3)
        l1s[0].fill(5, MesiState.SHARED, version=3)
        check_data_values(l1s, llc, {5: 3}, {})

    def test_stale_l1_copy_raises(self):
        l1s, llc, _ = make_parts()
        llc.fill(5, version=3)
        l1s[0].fill(5, MesiState.SHARED, version=2)
        with pytest.raises(InvariantViolation):
            check_data_values(l1s, llc, {5: 3}, {})

    def test_stale_llc_allowed_with_dirty_owner(self):
        l1s, llc, _ = make_parts()
        llc.fill(5, version=1)
        l1s[0].fill(5, MesiState.MODIFIED, version=3)
        check_data_values(l1s, llc, {5: 3}, {})

    def test_stale_llc_without_dirty_owner_raises(self):
        l1s, llc, _ = make_parts()
        llc.fill(5, version=1)
        with pytest.raises(InvariantViolation):
            check_data_values(l1s, llc, {5: 3}, {})

    def test_offchip_block_checked_against_memory(self):
        l1s, llc, _ = make_parts()
        check_data_values(l1s, llc, {7: 2}, {7: 2})
        with pytest.raises(InvariantViolation):
            check_data_values(l1s, llc, {7: 2}, {7: 1})


class TestSwmrMoesi:
    """MOESI audit (see docs/VERIFICATION.md): one OWNED copy may coexist
    with SHARED readers — any OWNED+OWNED or OWNED+E/M pile-up must be
    reported as an OWNED-state violation, not a generic SWMR failure."""

    def test_owned_plus_shared_is_legal(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.OWNED, 1)
        l1s[1].fill(5, MesiState.SHARED, 1)
        check_swmr(l1s)

    def test_owned_plus_many_shared_is_legal(self):
        l1s, _, _ = make_parts(num_cores=4)
        l1s[0].fill(5, MesiState.OWNED, 1)
        for core in (1, 2, 3):
            l1s[core].fill(5, MesiState.SHARED, 1)
        check_swmr(l1s)

    def test_owned_plus_modified_raises_owned_rule(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.OWNED, 1)
        l1s[1].fill(5, MesiState.MODIFIED, 2)
        with pytest.raises(InvariantViolation, match="OWNED-state rule"):
            check_swmr(l1s)

    def test_owned_plus_exclusive_raises_owned_rule(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.OWNED, 1)
        l1s[1].fill(5, MesiState.EXCLUSIVE, 1)
        with pytest.raises(InvariantViolation, match="OWNED-state rule"):
            check_swmr(l1s)

    def test_two_owned_raise_owned_rule(self):
        l1s, _, _ = make_parts()
        l1s[0].fill(5, MesiState.OWNED, 1)
        l1s[1].fill(5, MesiState.OWNED, 1)
        with pytest.raises(InvariantViolation, match="OWNED-state rule"):
            check_swmr(l1s)

    def test_real_moesi_controllers_produce_legal_owned_sharing(self):
        """End-to-end: l1_controller + home produce O+S, and the checker
        agrees it is legal (the distinguishing trace from the audit, also
        planted in the fuzzer's seed corpus)."""
        from repro.common.mesi import CoherenceProtocol
        from repro.verify import RunOptions, make_fuzz_config
        from repro.common.config import DirectoryKind
        from repro.sim.system import build_system

        config = make_fuzz_config(
            DirectoryKind.STASH,
            RunOptions(protocol=CoherenceProtocol.MOESI, check_every=1),
        )
        system = build_system(config)
        program = [
            (0, 0x10, True),   # M at core 0
            (1, 0x10, False),  # downgrade to O, reader S
            (2, 0x10, False),  # O + S + S
        ]
        for core, block, is_write in program:
            system.access(core, block, is_write)
            system.check_invariants()
        states = {
            l1.core_id: MesiState(l1.probe(0x10, touch=False).state)
            for l1 in system.l1s
            if l1.probe(0x10, touch=False) is not None
        }
        assert states[0] is MesiState.OWNED
        assert states[1] is MesiState.SHARED
        assert states[2] is MesiState.SHARED
        # The owner's upgrade back to M must invalidate both S copies.
        system.access(0, 0x10, True)
        system.check_invariants()
        assert MesiState(system.l1s[0].probe(0x10, touch=False).state) is (
            MesiState.MODIFIED
        )
        assert system.l1s[1].probe(0x10, touch=False) is None
        assert system.l1s[2].probe(0x10, touch=False) is None
