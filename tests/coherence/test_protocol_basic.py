"""Single-core protocol flows: fills, hits, upgrades, evictions.

All tests run with invariant checking available; ``sys.check_invariants()``
is called explicitly after interesting transitions.
"""

import pytest

from repro.common.config import DirectoryKind
from repro.common.mesi import MesiState
from repro.sim.system import build_system
from tests.conftest import tiny_config


@pytest.fixture(params=[DirectoryKind.SPARSE, DirectoryKind.STASH, DirectoryKind.IDEAL])
def system(request):
    return build_system(tiny_config(request.param, ratio=2.0))


class TestColdRead:
    def test_read_miss_grants_exclusive(self, system):
        system.access(0, 0x100, is_write=False)
        assert system.l1s[0].state_of(0x100) is MesiState.EXCLUSIVE
        system.check_invariants()

    def test_llc_filled_inclusively(self, system):
        system.access(0, 0x100, is_write=False)
        assert system.llc.contains(0x100)

    def test_directory_tracks_reader(self, system):
        system.access(0, 0x100, is_write=False)
        entry = system.directory.lookup(0x100, touch=False)
        assert entry.owner == 0
        assert entry.believed == {0}

    def test_memory_fetched_once(self, system):
        system.access(0, 0x100, is_write=False)
        system.access(0, 0x100, is_write=False)  # L1 hit
        assert system.memory.reads() == 1


class TestColdWrite:
    def test_write_miss_grants_modified(self, system):
        system.access(0, 0x100, is_write=True)
        assert system.l1s[0].state_of(0x100) is MesiState.MODIFIED
        system.check_invariants()

    def test_silent_e_to_m_upgrade(self, system):
        system.access(0, 0x100, is_write=False)  # E
        msgs_before = system.network.traffic.total_messages()
        system.access(0, 0x100, is_write=True)   # silent E->M
        assert system.l1s[0].state_of(0x100) is MesiState.MODIFIED
        assert system.network.traffic.total_messages() == msgs_before
        system.check_invariants()


class TestHits:
    def test_read_hit_latency_is_l1_hit(self, system):
        system.access(0, 0x100, is_write=False)
        latency = system.access(0, 0x100, is_write=False)
        assert latency == system.config.timing.l1_hit

    def test_write_hit_on_m(self, system):
        system.access(0, 0x100, is_write=True)
        latency = system.access(0, 0x100, is_write=True)
        assert latency == system.config.timing.l1_hit

    def test_hit_counters(self, system):
        system.access(0, 0x100, is_write=False)
        system.access(0, 0x100, is_write=False)
        stats = system.stats.child("protocol")
        assert stats.get("l1_hits") == 1
        assert stats.get("l1_misses") == 1


class TestL1Eviction:
    def test_dirty_victim_written_back(self, system):
        # L1 has 4 sets x 2 ways; blocks 0, 4, 8 collide in set 0.
        system.access(0, 0, is_write=True)
        system.access(0, 4, is_write=False)
        system.access(0, 8, is_write=False)  # evicts one of 0 / 4
        assert system.l1s[0].occupancy() == 2
        system.check_invariants()

    def test_dirty_writeback_reaches_llc(self, system):
        system.access(0, 0, is_write=True)
        system.access(0, 4, is_write=False)
        system.access(0, 8, is_write=False)
        system.access(0, 12, is_write=False)  # push 0 out for sure
        # Block 0 was dirty; after eviction the LLC must hold its data.
        llc_block = system.llc.probe(0, touch=False)
        assert llc_block is not None
        if system.l1s[0].probe(0, touch=False) is None:
            assert llc_block.dirty

    def test_reread_after_eviction_refetches_from_llc(self, system):
        system.access(0, 0, is_write=True)
        for addr in (4, 8):
            system.access(0, addr, is_write=False)
        reads_before = system.memory.reads()
        system.access(0, 0, is_write=False)
        assert system.memory.reads() == reads_before  # served by LLC, not DRAM
        system.check_invariants()


class TestLlcEviction:
    def test_llc_eviction_back_invalidates(self):
        # Tiny LLC: 4 sets x 2 ways = 8 blocks, L1 16 blocks per core.
        config = tiny_config(
            DirectoryKind.SPARSE, ratio=4.0, num_cores=1,
            l1_sets=8, l1_ways=2, llc_sets=4, llc_ways=2,
        )
        system = build_system(config)
        # Blocks 0, 4, 8, ... all map to LLC set 0 (4 sets).
        for addr in (0, 4, 8):
            system.access(0, addr, is_write=False)
        # LLC set 0 holds two of them; one got evicted + back-invalidated.
        cached = [a for a in (0, 4, 8) if system.l1s[0].probe(a, touch=False)]
        assert len(cached) == 2
        system.check_invariants()

    def test_llc_inclusion_always_holds(self):
        config = tiny_config(
            DirectoryKind.STASH, ratio=4.0, num_cores=1,
            l1_sets=8, l1_ways=2, llc_sets=4, llc_ways=2,
        )
        system = build_system(config)
        for addr in range(0, 64, 4):
            system.access(0, addr, is_write=addr % 8 == 0)
            system.check_invariants()
