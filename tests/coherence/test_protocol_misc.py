"""Miscellaneous protocol-facade behaviours not covered elsewhere."""

from repro.common.config import DirectoryKind
from repro.sim.system import build_system
from tests.conftest import tiny_config


class TestHiddenBlocks:
    def test_no_hidden_blocks_without_pressure(self):
        system = build_system(tiny_config(DirectoryKind.STASH, ratio=2.0))
        for addr in range(4):
            system.access(0, addr, is_write=False)
        assert system.hidden_blocks() == 0

    def test_hidden_blocks_counted_after_stash(self):
        system = build_system(
            tiny_config(DirectoryKind.STASH, entries_override=4, dir_ways=2,
                        l1_sets=4, l1_ways=2)
        )
        for addr in (0, 2, 6):  # directory-set conflict, no L1 conflict
            system.access(0, addr, is_write=False)
        assert system.hidden_blocks() == 1

    def test_effective_tracking_includes_stale_bits(self):
        system = build_system(
            tiny_config(DirectoryKind.STASH, entries_override=4, dir_ways=2,
                        l1_sets=4, l1_ways=2)
        )
        for addr in (0, 2, 6):
            system.access(0, addr, is_write=False)
        assert system.effective_tracking() == system.directory.occupancy() + 1


class TestZeroKeysNeverMaterialize:
    def test_upgrade_only_run_has_no_l1_hits_key(self):
        # An S-state write hit takes the upgrade path without counting an
        # L1 hit.  The counter must not be *created* along the way either:
        # the vector engine's flat-stats contract is "a key exists iff its
        # count is nonzero", and the engine differential compares the
        # trees exactly (regression for a hit cell materialized at 0.0
        # before the upgrade branch was taken).
        system = build_system(tiny_config())
        system.access(0, 0, is_write=False)
        system.access(1, 0, is_write=False)  # both copies now SHARED
        system.access(0, 0, is_write=True)   # S write hit -> upgrade
        flat = system.flat_stats()
        assert flat["system.protocol.upgrade_misses"] == 1
        assert "system.protocol.l1_hits" not in flat


class TestStatsFacade:
    def test_flat_stats_snapshot(self):
        system = build_system(tiny_config())
        system.access(0, 0, is_write=True)
        flat = system.flat_stats()
        assert flat["system.protocol.accesses"] == 1
        assert flat["system.protocol.writes"] == 1
        # Snapshot is live view of the same counters dict semantics: a new
        # access is visible in a fresh snapshot.
        system.access(0, 0, is_write=False)
        assert system.flat_stats()["system.protocol.accesses"] == 2

    def test_latency_accumulates(self):
        system = build_system(tiny_config())
        total = 0
        for i in range(5):
            total += system.access(0, i, is_write=False)
        assert system.flat_stats()["system.protocol.latency_total"] == total


class TestIsStashFlag:
    def test_all_kinds_classified(self):
        relaxed = {DirectoryKind.STASH, DirectoryKind.ADAPTIVE_STASH}
        for kind in DirectoryKind:
            system = build_system(tiny_config(kind, ratio=1.0))
            assert system.is_stash == (kind in relaxed)
