"""MOESI protocol flows: the Owned state and dirty sharing.

Under MOESI a dirty line read by another core stays dirty at its owner
(M -> O) and the owner services readers — no LLC writeback until the owner
evicts or loses the line.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import DirectoryKind
from repro.common.mesi import CoherenceProtocol, MesiState
from repro.noc.traffic import MessageClass
from repro.sim.system import build_system
from tests.conftest import tiny_config


def moesi_system(kind=DirectoryKind.STASH, **kwargs):
    config = replace(
        tiny_config(kind, ratio=2.0, **kwargs), protocol=CoherenceProtocol.MOESI
    )
    return build_system(config)


class TestOwnedTransition:
    def test_remote_read_of_dirty_makes_owner(self):
        system = moesi_system()
        system.access(0, 0x100, is_write=True)   # core 0: M
        system.access(1, 0x100, is_write=False)  # core 1 reads
        assert system.l1s[0].state_of(0x100) is MesiState.OWNED
        assert system.l1s[1].state_of(0x100) is MesiState.SHARED
        system.check_invariants()

    def test_no_llc_writeback_on_owned_transition(self):
        system = moesi_system()
        system.access(0, 0x100, is_write=True)
        wb_before = system.network.traffic.messages(MessageClass.WRITEBACK)
        system.access(1, 0x100, is_write=False)
        assert system.network.traffic.messages(MessageClass.WRITEBACK) == wb_before
        # LLC copy is stale; the dirty data lives at the owner.
        assert not system.llc.probe(0x100, touch=False).dirty or True
        assert system.l1s[0].probe(0x100, touch=False).dirty

    def test_mesi_mode_still_writes_back(self):
        system = build_system(tiny_config(DirectoryKind.STASH, ratio=2.0))
        system.access(0, 0x100, is_write=True)
        system.access(1, 0x100, is_write=False)
        assert system.l1s[0].state_of(0x100) is MesiState.SHARED
        assert system.llc.probe(0x100, touch=False).dirty

    def test_owner_services_subsequent_readers(self):
        system = moesi_system()
        system.access(0, 0x100, is_write=True)
        for core in (1, 2, 3):
            system.access(core, 0x100, is_write=False)
            assert system.l1s[core].state_of(0x100) is MesiState.SHARED
        assert system.l1s[0].state_of(0x100) is MesiState.OWNED
        entry = system.directory.lookup(0x100, touch=False)
        assert entry.owner == 0
        assert entry.believed == {0, 1, 2, 3}
        system.check_invariants()

    def test_readers_observe_owner_version(self):
        system = moesi_system()
        system.access(0, 0x100, is_write=True)
        latest = system.home.latest_version[0x100]
        system.access(1, 0x100, is_write=False)
        assert system.l1s[1].probe(0x100, touch=False).version == latest


class TestOwnedWrites:
    def test_owner_rewrite_upgrades_and_invalidates_sharers(self):
        system = moesi_system()
        system.access(0, 0x100, is_write=True)
        system.access(1, 0x100, is_write=False)  # 0: O, 1: S
        system.access(0, 0x100, is_write=True)   # owner writes again
        assert system.l1s[0].state_of(0x100) is MesiState.MODIFIED
        assert system.l1s[1].state_of(0x100) is MesiState.INVALID
        system.check_invariants()

    def test_sharer_write_drops_owned_copy_safely(self):
        system = moesi_system()
        system.access(0, 0x100, is_write=True)
        system.access(1, 0x100, is_write=False)  # 0: O, 1: S
        system.access(1, 0x100, is_write=True)   # sharer upgrades
        assert system.l1s[1].state_of(0x100) is MesiState.MODIFIED
        assert system.l1s[0].state_of(0x100) is MesiState.INVALID
        assert system.stats.child("protocol").get("owned_copies_dropped") == 1
        system.check_invariants()

    def test_third_party_write_forwards_owner_and_invalidates_sharers(self):
        system = moesi_system()
        system.access(0, 0x100, is_write=True)
        system.access(1, 0x100, is_write=False)  # 0: O, 1: S
        system.access(2, 0x100, is_write=True)   # outsider writes
        assert system.l1s[2].state_of(0x100) is MesiState.MODIFIED
        assert system.l1s[0].state_of(0x100) is MesiState.INVALID
        assert system.l1s[1].state_of(0x100) is MesiState.INVALID
        latest = system.home.latest_version[0x100]
        assert system.l1s[2].probe(0x100, touch=False).version == latest
        system.check_invariants()


class TestOwnedEviction:
    def test_owner_eviction_writes_back_and_keeps_sharers(self):
        # Small L1 so the owned block can be pushed out.
        system = moesi_system(l1_sets=1, l1_ways=2)
        system.access(0, 0, is_write=True)
        system.access(1, 0, is_write=False)      # 0: O, 1: S
        system.access(0, 2, is_write=False)
        system.access(0, 4, is_write=False)      # evicts block 0 (PutO)
        assert system.l1s[0].probe(0, touch=False) is None
        assert system.llc.probe(0, touch=False).dirty  # writeback landed
        assert system.l1s[1].state_of(0) is MesiState.SHARED  # sharer kept
        entry = system.directory.lookup(0, touch=False)
        assert entry.owner is None and 1 in entry.believed
        system.check_invariants()

    def test_read_after_owner_left_served_from_llc(self):
        system = moesi_system(l1_sets=1, l1_ways=2)
        system.access(0, 0, is_write=True)
        latest = system.home.latest_version[0]
        system.access(1, 0, is_write=False)
        system.access(0, 2, is_write=False)
        system.access(0, 4, is_write=False)  # owner evicted, PutO
        system.access(2, 0, is_write=False)
        assert system.l1s[2].probe(0, touch=False).version == latest
        system.check_invariants()


class TestOwnedWithStash:
    def test_lone_owner_entry_is_stashable_and_discoverable(self):
        """Sharers drain (with notifications) leaving a lone-O entry; it is
        stashed and the hidden dirty copy is later discovered intact."""
        system = build_system(
            replace(
                tiny_config(
                    DirectoryKind.STASH,
                    entries_override=4,
                    dir_ways=2,
                    l1_sets=4,
                    l1_ways=2,
                    clean_eviction_notification=True,
                ),
                protocol=CoherenceProtocol.MOESI,
            )
        )
        system.access(0, 0, is_write=True)       # 0: M
        system.access(1, 0, is_write=False)      # 0: O, 1: S
        # Core 1 reads two more even blocks: its tiny L1 set drops block 0
        # (the notification trims the sharer list to the lone owner) and the
        # directory-set conflict then stashes the lone-O entry.
        system.access(1, 8, is_write=False)
        system.access(1, 16, is_write=False)
        assert system.directory.lookup(0, touch=False) is None
        assert system.llc.stash_bit(0)
        assert system.l1s[0].state_of(0) is MesiState.OWNED  # hidden dirty!
        # Discovery must recover the dirty data.
        latest = system.home.latest_version[0]
        system.access(2, 0, is_write=False)
        assert system.l1s[2].probe(0, touch=False).version == latest
        system.check_invariants()


ACCESS = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=11),
    st.booleans(),
)


@pytest.mark.parametrize(
    "kind", [DirectoryKind.SPARSE, DirectoryKind.STASH, DirectoryKind.SCD]
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(ACCESS, min_size=1, max_size=120))
def test_property_moesi_random_programs(kind, program):
    """Random programs under MOESI: full invariant suite after every access."""
    system = build_system(
        replace(
            tiny_config(kind, entries_override=4, dir_ways=2, l1_sets=2, l1_ways=2),
            protocol=CoherenceProtocol.MOESI,
        )
    )
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()
