"""Multi-core sharing flows: forwards, downgrades, invalidations, upgrades."""

import pytest

from repro.common.config import DirectoryKind
from repro.common.mesi import MesiState
from repro.noc.traffic import MessageClass
from repro.sim.system import build_system
from tests.conftest import tiny_config


@pytest.fixture(params=[DirectoryKind.SPARSE, DirectoryKind.STASH])
def system(request):
    return build_system(tiny_config(request.param, ratio=2.0))


class TestReadSharing:
    def test_second_reader_downgrades_exclusive_owner(self, system):
        system.access(0, 0x100, is_write=False)  # core 0: E
        system.access(1, 0x100, is_write=False)  # core 1 reads
        assert system.l1s[0].state_of(0x100) is MesiState.SHARED
        assert system.l1s[1].state_of(0x100) is MesiState.SHARED
        system.check_invariants()

    def test_directory_lists_both_sharers(self, system):
        system.access(0, 0x100, is_write=False)
        system.access(1, 0x100, is_write=False)
        entry = system.directory.lookup(0x100, touch=False)
        assert entry.owner is None
        assert entry.believed == {0, 1}

    def test_forward_message_sent(self, system):
        system.access(0, 0x100, is_write=False)
        before = system.network.traffic.messages(MessageClass.FORWARD)
        system.access(1, 0x100, is_write=False)
        assert system.network.traffic.messages(MessageClass.FORWARD) == before + 1

    def test_third_reader_served_from_llc(self, system):
        for core in (0, 1, 2):
            system.access(core, 0x100, is_write=False)
        entry = system.directory.lookup(0x100, touch=False)
        assert entry.believed == {0, 1, 2}
        assert system.memory.reads() == 1  # one cold fetch only
        system.check_invariants()


class TestDirtySharing:
    def test_reader_gets_dirty_data_from_owner(self, system):
        system.access(0, 0x100, is_write=True)   # core 0: M
        system.access(1, 0x100, is_write=False)  # core 1 reads dirty block
        assert system.l1s[0].state_of(0x100) is MesiState.SHARED
        assert system.l1s[1].state_of(0x100) is MesiState.SHARED
        # Owner's writeback refreshed the LLC.
        assert system.llc.probe(0x100, touch=False).dirty
        system.check_invariants()

    def test_data_value_propagates(self, system):
        system.access(0, 0x100, is_write=True)
        system.access(1, 0x100, is_write=False)
        v0 = system.l1s[0].probe(0x100, touch=False).version
        v1 = system.l1s[1].probe(0x100, touch=False).version
        assert v0 == v1 == system.home.latest_version[0x100]


class TestWriteInvalidation:
    def test_write_invalidates_all_sharers(self, system):
        for core in (0, 1, 2):
            system.access(core, 0x100, is_write=False)
        system.access(3, 0x100, is_write=True)
        for core in (0, 1, 2):
            assert system.l1s[core].state_of(0x100) is MesiState.INVALID
        assert system.l1s[3].state_of(0x100) is MesiState.MODIFIED
        system.check_invariants()

    def test_write_steals_modified_ownership(self, system):
        system.access(0, 0x100, is_write=True)
        system.access(1, 0x100, is_write=True)
        assert system.l1s[0].state_of(0x100) is MesiState.INVALID
        assert system.l1s[1].state_of(0x100) is MesiState.MODIFIED
        entry = system.directory.lookup(0x100, touch=False)
        assert entry.owner == 1
        system.check_invariants()

    def test_ping_pong_versions_monotonic(self, system):
        versions = []
        for i in range(6):
            core = i % 2
            system.access(core, 0x100, is_write=True)
            versions.append(system.home.latest_version[0x100])
        assert versions == sorted(versions)
        assert len(set(versions)) == 6
        system.check_invariants()


class TestUpgrade:
    def test_upgrade_from_shared(self, system):
        system.access(0, 0x100, is_write=False)
        system.access(1, 0x100, is_write=False)
        system.access(0, 0x100, is_write=True)  # S -> M upgrade
        assert system.l1s[0].state_of(0x100) is MesiState.MODIFIED
        assert system.l1s[1].state_of(0x100) is MesiState.INVALID
        system.check_invariants()

    def test_upgrade_counted(self, system):
        system.access(0, 0x100, is_write=False)
        system.access(1, 0x100, is_write=False)
        system.access(0, 0x100, is_write=True)
        assert system.stats.child("protocol").get("upgrade_misses") == 1
        assert system.stats.child("protocol").get("upgrade_requests") == 1

    def test_upgrade_grants_without_data(self, system):
        system.access(0, 0x100, is_write=False)
        system.access(1, 0x100, is_write=False)
        data_before = system.network.traffic.messages(MessageClass.DATA_RESPONSE)
        system.access(0, 0x100, is_write=True)
        assert system.network.traffic.messages(MessageClass.DATA_RESPONSE) == data_before


class TestReadAfterWrite:
    def test_every_reader_sees_last_write(self, system):
        system.access(2, 0x200, is_write=True)
        latest = system.home.latest_version[0x200]
        for core in (0, 1, 3):
            system.access(core, 0x200, is_write=False)
            assert system.l1s[core].probe(0x200, touch=False).version == latest
        system.check_invariants()
