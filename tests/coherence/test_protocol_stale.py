"""Staleness paths: silent clean evictions leave the directory's beliefs
behind reality, and the protocol must cope on every flow.

System under test: 4 cores, single-set 2-way L1s (easy to force silent
evictions), over-provisioned directory (no conflict evictions interfere).
"""

import pytest

from repro.common.config import DirectoryKind
from repro.common.mesi import MesiState
from repro.sim.system import build_system
from tests.conftest import tiny_config


@pytest.fixture(params=[DirectoryKind.SPARSE, DirectoryKind.STASH])
def system(request):
    return build_system(
        tiny_config(request.param, ratio=4.0, l1_sets=1, l1_ways=2)
    )


def silently_evict(system, core, addr, fillers):
    """Read filler blocks until ``addr`` leaves the core's L1 (clean)."""
    filler = iter(fillers)
    while system.l1s[core].probe(addr, touch=False) is not None:
        system.access(core, next(filler), is_write=False)


class TestStaleOwner:
    def test_read_from_stale_owner_nacks_and_serves_llc(self, system):
        system.access(0, 0, is_write=False)  # core 0: E
        silently_evict(system, 0, 0, fillers=[100, 102, 104, 106])
        # Directory still believes core 0 owns block 0.
        assert system.directory.lookup(0, touch=False).owner == 0
        system.access(1, 0, is_write=False)
        assert system.l1s[1].state_of(0) is MesiState.SHARED
        assert system.stats.child("protocol").get("forward_nacks") == 1
        entry = system.directory.lookup(0, touch=False)
        assert 0 not in entry.believed  # stale owner retired
        assert 1 in entry.believed
        system.check_invariants()

    def test_write_to_stale_owner_nacks_and_grants_m(self, system):
        system.access(0, 0, is_write=False)
        silently_evict(system, 0, 0, fillers=[100, 102, 104, 106])
        system.access(1, 0, is_write=True)
        assert system.l1s[1].state_of(0) is MesiState.MODIFIED
        assert system.stats.child("protocol").get("forward_nacks") == 1
        assert system.directory.lookup(0, touch=False).owner == 1
        system.check_invariants()


class TestStaleSelf:
    def test_reread_after_silent_self_eviction_regrants_exclusive(self, system):
        system.access(0, 0, is_write=False)
        silently_evict(system, 0, 0, fillers=[100, 102, 104, 106])
        system.access(0, 0, is_write=False)
        assert system.l1s[0].state_of(0) is MesiState.EXCLUSIVE
        assert system.stats.child("protocol").get("self_regrants") >= 1
        system.check_invariants()

    def test_rewrite_after_silent_self_eviction_regrants_modified(self, system):
        system.access(0, 0, is_write=False)  # E (clean, so eviction is silent)
        silently_evict(system, 0, 0, fillers=[100, 102, 104, 106])
        system.access(0, 0, is_write=True)
        assert system.l1s[0].state_of(0) is MesiState.MODIFIED
        system.check_invariants()


class TestStaleSharers:
    def test_write_sends_spurious_invalidation_to_stale_sharer(self, system):
        system.access(0, 0, is_write=False)
        system.access(1, 0, is_write=False)  # both S; believed {0, 1}
        silently_evict(system, 1, 0, fillers=[101, 103, 105, 107])
        assert 1 in system.directory.lookup(0, touch=False).believed  # stale
        system.access(2, 0, is_write=True)
        # Invalidations went to cores 0 and 1; core 1's found nothing.
        assert system.stats.child("protocol").get("write_inval_msgs") == 2
        assert system.l1s[2].state_of(0) is MesiState.MODIFIED
        system.check_invariants()

    def test_stale_sharer_rereads_as_normal_sharer(self, system):
        system.access(0, 0, is_write=False)
        system.access(1, 0, is_write=False)
        silently_evict(system, 1, 0, fillers=[101, 103, 105, 107])
        system.access(1, 0, is_write=False)  # re-join; already believed
        assert system.l1s[1].state_of(0) is MesiState.SHARED
        system.check_invariants()


class TestStaleEntryEviction:
    def test_evicting_stale_entry_costs_messages_but_no_copies(self):
        """A directory eviction of a fully stale entry sends invalidations
        that find nothing: pure overhead, no copies destroyed."""
        system = build_system(
            tiny_config(
                DirectoryKind.SPARSE, entries_override=4, dir_ways=2,
                l1_sets=1, l1_ways=2,
            )
        )
        system.access(0, 0, is_write=False)
        silently_evict(system, 0, 0, fillers=[100, 102, 104, 106])
        invals_before = system.stats.child("protocol").get("dir_induced_invalidations")
        # Entry for block 0 is stale; force a conflict in its set (evens).
        # The set currently holds entries for 0 and the surviving fillers.
        system.access(1, 2, is_write=False)
        system.access(1, 4, is_write=False)
        system.access(1, 6, is_write=False)
        # No *live* copies were destroyed by evicting stale entries for
        # blocks core 0 no longer holds.
        assert (
            system.stats.child("protocol").get("dir_induced_invalidations")
            <= invals_before + 2  # fillers may still be live; bound loosely
        )
        system.check_invariants()
