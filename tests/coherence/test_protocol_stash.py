"""Stash-specific protocol flows: stashing, hiding, discovery, recovery.

These tests pin down the paper's mechanism end to end: a directory conflict
stashes a private entry instead of invalidating, the block survives hidden
in its L1, the LLC stash bit marks it, and a later request discovers it and
rebuilds tracking — with correct data in every case.
"""

import pytest

from repro.common.config import DirectoryKind
from repro.common.mesi import MesiState
from repro.sim.system import build_system
from tests.conftest import tiny_config


def stash_system(dir_entries=4, dir_ways=2, **kwargs):
    """Stash system with a tiny directory to force stashing quickly."""
    config = tiny_config(
        DirectoryKind.STASH, dir_ways=dir_ways, entries_override=dir_entries, **kwargs
    )
    return build_system(config)


def sparse_system(dir_entries=4, dir_ways=2, **kwargs):
    config = tiny_config(
        DirectoryKind.SPARSE, dir_ways=dir_ways, entries_override=dir_entries, **kwargs
    )
    return build_system(config)


def force_conflict(system, core=0, set_stride=2, count=3):
    """Touch ``count`` blocks that collide in directory set 0.

    With 2 directory sets, blocks 0, 2, 4... map to set 0.
    """
    addrs = [i * set_stride for i in range(count)]
    for addr in addrs:
        system.access(core, addr, is_write=False)
    return addrs


class TestStashing:
    def test_conflict_stashes_instead_of_invalidating(self):
        system = stash_system()
        addrs = force_conflict(system, count=3)
        # All three blocks still cached despite only 2 entries per set.
        for addr in addrs:
            assert system.l1s[0].probe(addr, touch=False) is not None
        assert system.stats.child("protocol").get("stash_evictions") == 1
        assert system.stats.child("protocol").get("dir_induced_invalidations") == 0
        system.check_invariants()

    def test_sparse_invalidates_in_same_scenario(self):
        system = sparse_system()
        addrs = force_conflict(system, count=3)
        cached = [a for a in addrs if system.l1s[0].probe(a, touch=False)]
        assert len(cached) == 2  # one copy destroyed
        assert system.stats.child("protocol").get("dir_induced_invalidations") == 1
        system.check_invariants()

    def test_stash_bit_set_on_llc_line(self):
        system = stash_system()
        force_conflict(system, count=3)
        stashed = [
            addr for addr in (0, 2, 4) if system.llc.stash_bit(addr)
        ]
        assert len(stashed) == 1
        # The stashed block is exactly the untracked one.
        assert system.directory.lookup(stashed[0], touch=False) is None

    def test_hidden_block_still_hit_by_owner(self):
        system = stash_system()
        addrs = force_conflict(system, count=3)
        hits_before = system.stats.child("protocol").get("l1_hits")
        for addr in addrs:
            system.access(0, addr, is_write=False)
        assert (
            system.stats.child("protocol").get("l1_hits") == hits_before + 3
        )  # stashing preserved all the locality


class TestDiscoveryOnRead:
    def test_other_core_read_discovers_hidden_clean(self):
        system = stash_system()
        force_conflict(system, core=0, count=3)
        hidden = next(a for a in (0, 2, 4) if system.llc.stash_bit(a))
        system.access(1, hidden, is_write=False)
        # Discovery found core 0; both are sharers now, tracking rebuilt.
        entry = system.directory.lookup(hidden, touch=False)
        assert entry is not None
        assert entry.believed == {0, 1}
        assert system.l1s[0].state_of(hidden) is MesiState.SHARED
        assert not system.llc.stash_bit(hidden)
        assert system.stats.child("discovery").get("successful_discoveries") == 1
        system.check_invariants()

    def test_discovery_of_hidden_dirty_returns_fresh_data(self):
        system = stash_system()
        # Core 0 writes three conflicting blocks: one gets stashed dirty.
        for addr in (0, 2, 4):
            system.access(0, addr, is_write=True)
        hidden = next(a for a in (0, 2, 4) if system.llc.stash_bit(a))
        latest = system.home.latest_version[hidden]
        system.access(1, hidden, is_write=False)
        assert system.l1s[1].probe(hidden, touch=False).version == latest
        system.check_invariants()


class TestDiscoveryOnWrite:
    def test_other_core_write_invalidates_hidden_copy(self):
        system = stash_system()
        force_conflict(system, core=0, count=3)
        hidden = next(a for a in (0, 2, 4) if system.llc.stash_bit(a))
        system.access(1, hidden, is_write=True)
        assert system.l1s[0].state_of(hidden) is MesiState.INVALID
        assert system.l1s[1].state_of(hidden) is MesiState.MODIFIED
        system.check_invariants()

    def test_hider_upgrade_of_stashed_lone_s(self):
        """A core holding a stashed lone-S block writes it: the upgrade
        message proves the requester holds a copy and relaxed inclusion caps
        untracked copies at one, so the home grants exclusivity directly —
        no discovery broadcast needed."""
        system = build_system(
            tiny_config(
                DirectoryKind.STASH,
                entries_override=4,
                dir_ways=2,
                l1_sets=1,
                l1_ways=2,
                clean_eviction_notification=True,
            )
        )
        # Cores 0 and 1 share block 0 in S.
        system.access(0, 0, is_write=False)
        system.access(1, 0, is_write=False)
        # Push block 0 out of core 1's tiny L1; the eviction notice trims
        # the sharer list, leaving a lone-S entry for core 0.
        system.access(1, 1, is_write=False)
        system.access(1, 3, is_write=False)
        entry = system.directory.lookup(0, touch=False)
        assert entry.believed == {0} and entry.owner is None
        # Conflict-stash the lone-S entry (dir set 0 holds even blocks).
        system.access(0, 2, is_write=False)
        # Accessing 2 evicted block 0 from core 0's tiny L1?  No: core 0's
        # single L1 set holds 2 ways; 0 and 2 both fit.
        system.access(1, 4, is_write=False)  # third even block: conflict
        assert system.directory.lookup(0, touch=False) is None
        assert system.llc.stash_bit(0)
        assert system.l1s[0].state_of(0) is MesiState.SHARED  # hidden lone-S
        # The hider upgrades: untracked-upgrade path, no broadcast.
        broadcasts_before = system.stats.child("discovery").get("broadcasts")
        system.access(0, 0, is_write=True)
        assert system.l1s[0].state_of(0) is MesiState.MODIFIED
        assert system.stats.child("discovery").get("broadcasts") == broadcasts_before
        assert system.stats.child("protocol").get("hider_upgrades") == 1
        entry = system.directory.lookup(0, touch=False)
        assert entry is not None and entry.owner == 0
        assert not system.llc.stash_bit(0)
        system.check_invariants()


class TestFalseDiscovery:
    def test_silent_clean_eviction_leaves_stale_stash_bit(self):
        system = stash_system(l1_sets=1, l1_ways=2)
        # L1 holds only 2 blocks. Conflict-stash block 0, then push it out
        # of the L1 silently (clean), leaving the stash bit stale.
        for addr in (0, 2, 4):  # directory set 0 conflict -> one stashed
            system.access(0, addr, is_write=False)
        stashed = [a for a in (0, 2, 4) if system.llc.stash_bit(a)]
        assert stashed  # something was stashed
        hidden = stashed[0]
        # Keep reading other blocks in the single L1 set until the hidden
        # block leaves the L1 (silent clean eviction).
        filler = 100
        while system.l1s[0].probe(hidden, touch=False) is not None:
            system.access(0, filler, is_write=False)
            filler += 2
        assert system.llc.stash_bit(hidden)  # stale!
        # Another core's read now triggers a false discovery.
        system.access(1, hidden, is_write=False)
        assert system.stats.child("discovery").get("false_discoveries") >= 1
        assert not system.llc.stash_bit(hidden)
        system.check_invariants()

    def test_dirty_writeback_clears_stash_bit(self):
        # Blocks 0, 2, 6 conflict in the 2-set directory (all even) but fit
        # in the 4-set L1 (sets 0, 2, 2), so the stashed block stays dirty
        # in the L1 after the directory dropped its entry.
        system = stash_system(l1_sets=4, l1_ways=2)
        for addr in (0, 2, 6):
            system.access(0, addr, is_write=True)
        stashed = [a for a in (0, 2, 6) if system.llc.stash_bit(a)]
        assert stashed
        hidden = stashed[0]
        assert system.l1s[0].probe(hidden, touch=False).dirty
        # Push the hidden dirty block out of its L1 set: the PutM writeback
        # tells the home the hider is gone and clears the stash bit.
        filler = hidden + 8  # same L1 set (4 sets), stride 8
        while system.l1s[0].probe(hidden, touch=False) is not None:
            system.access(0, filler, is_write=False)
            filler += 8
        assert not system.llc.stash_bit(hidden)
        system.check_invariants()


class TestNotificationAblation:
    def test_notification_prevents_stale_stash_bits(self):
        system = build_system(
            tiny_config(
                DirectoryKind.STASH,
                entries_override=4,
                dir_ways=2,
                l1_sets=4,
                l1_ways=2,
                clean_eviction_notification=True,
            )
        )
        # Blocks 0, 2, 6: directory-set-0 conflict, no L1 conflict (the
        # notification would otherwise trim entries before the conflict).
        for addr in (0, 2, 6):
            system.access(0, addr, is_write=False)
        stashed = [a for a in (0, 2, 6) if system.llc.stash_bit(a)]
        assert stashed
        hidden = stashed[0]
        assert system.l1s[0].probe(hidden, touch=False) is not None
        # Evict the hidden clean copy; its eviction notice clears the bit.
        filler = hidden + 8  # same L1 set, stride 8
        while system.l1s[0].probe(hidden, touch=False) is not None:
            system.access(0, filler, is_write=False)
            filler += 8
        assert not system.llc.stash_bit(hidden)
        system.check_invariants()


class TestLlcEvictionOfStashed:
    def test_llc_eviction_discovers_and_invalidates_hidden(self):
        system = stash_system(
            dir_entries=4, dir_ways=2, l1_sets=8, l1_ways=2, llc_sets=4, llc_ways=2
        )
        # Stash a block, then thrash its LLC set until the stashed line is
        # evicted; the hidden L1 copy must be discovered and invalidated.
        for addr in (0, 2, 4):
            system.access(0, addr, is_write=False)
        stashed = [a for a in (0, 2, 4) if system.llc.stash_bit(a)]
        assert stashed
        hidden = stashed[0]
        filler = hidden + 4  # same LLC set (4 sets): stride 4
        while system.llc.contains(hidden):
            system.access(1, filler, is_write=False)
            filler += 4
        # Once the LLC line is gone, the hidden copy must be gone too.
        assert system.l1s[0].probe(hidden, touch=False) is None
        system.check_invariants()
