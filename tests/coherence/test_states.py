"""Unit tests for MESI state predicates."""

from repro.coherence.states import (
    LlcState,
    MesiState,
    can_read,
    can_write,
    is_exclusive_class,
)


class TestPredicates:
    def test_can_read(self):
        assert can_read(MesiState.SHARED)
        assert can_read(MesiState.EXCLUSIVE)
        assert can_read(MesiState.MODIFIED)
        assert not can_read(MesiState.INVALID)

    def test_can_write(self):
        assert can_write(MesiState.EXCLUSIVE)
        assert can_write(MesiState.MODIFIED)
        assert not can_write(MesiState.SHARED)
        assert not can_write(MesiState.INVALID)

    def test_exclusive_class(self):
        assert is_exclusive_class(MesiState.EXCLUSIVE)
        assert is_exclusive_class(MesiState.MODIFIED)
        assert not is_exclusive_class(MesiState.SHARED)

    def test_states_are_ints(self):
        # CacheBlock stores states in an int slot.
        assert int(MesiState.INVALID) == 0
        assert MesiState(3) is MesiState.MODIFIED

    def test_llc_state(self):
        assert LlcState.VALID != LlcState.INVALID
