"""Protocol unit tests for the Tardis timestamp-coherence backend.

Each test drives a tiny system through one protocol scenario and asserts
the lease mechanics directly: grants, self-invalidation, the absence of
read invalidations, and the backend's own invariant suite.
"""

import pytest

from repro.coherence.states import MesiState
from repro.common.config import (
    CacheConfig,
    DirectoryKind,
    NoCConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError, InvariantViolation
from repro.sim.system import build_system

_S = int(MesiState.SHARED)
_E = int(MesiState.EXCLUSIVE)
_M = int(MesiState.MODIFIED)


def make_system(cores=2, lease=8):
    config = SystemConfig(
        num_cores=cores,
        l1=CacheConfig(sets=2, ways=2),
        llc=CacheConfig(sets=8, ways=2),
        noc=NoCConfig(mesh_width=2, mesh_height=2),
    ).with_directory(kind=DirectoryKind.TARDIS, tardis_lease=lease)
    return build_system(config)


def proto_stat(system, name):
    return system.flat_stats().get(f"system.protocol.{name}", 0)


class TestGrants:
    def test_sole_reader_gets_exclusive(self):
        system = make_system()
        system.access(0, 5, False)
        block = system.l1s[0].lookup_block(5)
        assert block is not None and block.state == _E
        assert system.directory.lookup(5, touch=False).owner == 0

    def test_second_reader_downgrades_owner_and_leases_both(self):
        system = make_system()
        system.access(0, 5, False)
        system.access(1, 5, False)
        assert system.l1s[0].lookup_block(5).state == _S
        assert system.l1s[1].lookup_block(5).state == _S
        assert 5 in system.home.leases[0]
        assert 5 in system.home.leases[1]
        assert system.directory.lookup(5, touch=False).owner is None
        system.check_invariants()

    def test_write_miss_grants_modified(self):
        system = make_system()
        system.access(0, 5, True)
        block = system.l1s[0].lookup_block(5)
        assert block.state == _M and block.dirty
        assert block.version == system.home.latest_version[5]


class TestLeases:
    def test_write_leaves_leased_readers_in_place(self):
        # The Tardis headline: a write sends no invalidations to readers.
        system = make_system(lease=16)
        system.access(0, 5, False)
        system.access(1, 5, False)
        system.access(0, 5, True)  # upgrade; core 1 keeps its lease
        reader = system.l1s[1].lookup_block(5)
        assert reader is not None and reader.state == _S
        system.check_invariants()  # legal SWMR violation for this backend
        # The leased read within the window observes the *old* version.
        system.access(1, 5, False)
        stale = system.l1s[1].lookup_block(5).version
        assert stale < system.home.latest_version[5]
        assert proto_stat(system, "ts_jumps") >= 1

    def test_lease_expiry_self_invalidates_and_renews(self):
        system = make_system(lease=4)
        system.access(0, 5, False)
        system.access(1, 5, False)
        system.access(0, 5, True)
        # Tick the global clock past core 1's lease with unrelated hits.
        for _ in range(6):
            system.access(0, 5, False)
        before = proto_stat(system, "lease_expirations")
        system.access(1, 5, False)  # expired: silent drop + renewal miss
        assert proto_stat(system, "lease_expirations") == before + 1
        assert system.l1s[1].lookup_block(5).version == (
            system.home.latest_version[5]
        )
        system.check_invariants()

    def test_leased_write_takes_upgrade_path(self):
        system = make_system(lease=16)
        system.access(0, 5, False)
        system.access(1, 5, False)
        system.access(1, 5, True)
        assert proto_stat(system, "upgrade_misses") == 1
        assert proto_stat(system, "upgrade_requests") == 1
        assert system.l1s[1].lookup_block(5).state == _M
        assert 5 not in system.home.leases[1]
        system.check_invariants()


class TestEviction:
    def test_llc_eviction_spares_leased_readers(self):
        # A conventional directory back-invalidates every sharer on LLC
        # eviction; Tardis recalls only the owner, so a leased S copy
        # survives the loss of its LLC line and its directory entry.
        system = make_system(lease=200)
        system.access(0, 5, False)
        system.access(1, 5, False)
        # Force 5 out of its LLC set (8 sets x 2 ways) from core 0.
        conflicts = [5 + 8 * k for k in range(1, 6)]
        for addr in conflicts:
            system.access(0, addr, False)
        assert system.llc.probe(5, touch=False) is None
        assert not system.directory.contains(5)
        survivor = system.l1s[1].lookup_block(5)
        assert survivor is not None and survivor.state == _S
        system.check_invariants()
        # And the surviving lease still serves reads.
        system.access(1, 5, False)
        assert proto_stat(system, "l1_hits") >= 1


class TestStatIdentities:
    def test_hit_upgrade_miss_partition_accesses(self):
        system = make_system(cores=2, lease=6)
        import random

        decide = random.Random(9)
        for _ in range(600):
            system.access(
                decide.randrange(2),
                decide.randrange(24),
                decide.random() < 0.3,
            )
        system.check_invariants()
        flat = system.flat_stats()
        proto = {
            k.rsplit(".", 1)[1]: v
            for k, v in flat.items()
            if k.startswith("system.protocol.")
        }
        assert proto["accesses"] == 600
        assert proto["reads"] + proto["writes"] == 600
        assert (
            proto["l1_hits"]
            + proto.get("upgrade_misses", 0)
            + proto["l1_misses"]
            == 600
        )


class TestGuards:
    def test_private_l2_rejected(self):
        config = SystemConfig(
            num_cores=2,
            l1=CacheConfig(sets=2, ways=2),
            l2=CacheConfig(sets=4, ways=2),
            llc=CacheConfig(sets=8, ways=2),
            noc=NoCConfig(mesh_width=2, mesh_height=2),
        ).with_directory(kind=DirectoryKind.TARDIS)
        with pytest.raises(ConfigError):
            build_system(config)

    def test_config_validates_lease_and_ts_bits(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=2).with_directory(
                kind=DirectoryKind.TARDIS, tardis_lease=0
            )
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=2).with_directory(
                kind=DirectoryKind.TARDIS, tardis_ts_bits=0
            )


class TestInvariants:
    def test_checker_catches_double_exclusive(self):
        system = make_system()
        system.access(0, 5, True)
        version = system.l1s[0].lookup_block(5).version
        system.l1s[1].fill(5, _M, version)  # corrupt: second M copy
        with pytest.raises(InvariantViolation):
            system.check_invariants()

    def test_checker_requires_lease_for_shared_copies(self):
        system = make_system()
        system.access(0, 5, False)
        system.access(1, 5, False)
        del system.home.leases[1][5]  # corrupt: S copy without a lease
        with pytest.raises(InvariantViolation):
            system.check_invariants()

    def test_checker_ties_entries_to_llc_residency(self):
        system = make_system()
        system.access(0, 5, False)
        system.directory.allocate(99)  # corrupt: entry with no LLC line
        with pytest.raises(InvariantViolation):
            system.check_invariants()


class TestStorageModel:
    def test_no_sharer_vector_in_the_estimate(self):
        from repro.energy.area import storage_of

        config = SystemConfig(num_cores=16).with_directory(
            kind=DirectoryKind.TARDIS
        )
        estimate = storage_of(config)
        dcfg = config.directory
        owner_ptr = max(1, (16 - 1).bit_length())
        assert estimate.bits_per_entry == 2 * dcfg.tardis_ts_bits + owner_ptr + 1
        assert estimate.entries == config.llc.blocks
        assert estimate.stash_bit_overhead == 0

    def test_entry_bits_scale_logarithmically_with_cores(self):
        from repro.energy.area import storage_of

        at_16 = storage_of(
            SystemConfig(num_cores=16).with_directory(kind=DirectoryKind.TARDIS)
        ).bits_per_entry
        at_1024 = storage_of(
            SystemConfig(
                num_cores=1024,
                noc=NoCConfig(mesh_width=32, mesh_height=32),
            ).with_directory(kind=DirectoryKind.TARDIS)
        ).bits_per_entry
        # 64x the cores costs only the owner pointer's extra 6 bits.
        assert at_1024 - at_16 == 6
