"""Unit tests for block-address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.addr import (
    block_address,
    block_base,
    home_bank,
    is_power_of_two,
    log2_exact,
    rebuild_block_addr,
    set_index,
    stride_hash,
    tag_bits,
)
from repro.common.errors import ConfigError


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_rejects_non_powers(self):
        for value in (0, -1, -4, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(64) == 6
        assert log2_exact(1 << 17) == 17

    def test_log2_rejects_non_power(self):
        with pytest.raises(ConfigError):
            log2_exact(48)

    def test_log2_rejects_zero(self):
        with pytest.raises(ConfigError):
            log2_exact(0)


class TestBlockAddressing:
    def test_block_address_strips_offset(self):
        assert block_address(0, 64) == 0
        assert block_address(63, 64) == 0
        assert block_address(64, 64) == 1
        assert block_address(0x1234, 64) == 0x1234 >> 6

    def test_block_base_aligns_down(self):
        assert block_base(0x1234, 64) == 0x1200
        assert block_base(0x1200, 64) == 0x1200

    def test_same_line_same_block(self):
        for offset in range(64):
            assert block_address(0x4000 + offset, 64) == block_address(0x4000, 64)


class TestIndexTag:
    def test_set_index_wraps(self):
        assert set_index(0, 64) == 0
        assert set_index(63, 64) == 63
        assert set_index(64, 64) == 0
        assert set_index(65, 64) == 1

    def test_tag_strips_index(self):
        assert tag_bits(0x12345, 64) == 0x12345 >> 6

    def test_roundtrip(self):
        for addr in (0, 1, 63, 64, 0xDEADBEEF):
            idx = set_index(addr, 128)
            tag = tag_bits(addr, 128)
            assert rebuild_block_addr(tag, idx, 128) == addr

    @given(st.integers(min_value=0, max_value=2**48), st.sampled_from([1, 2, 64, 1024]))
    def test_roundtrip_property(self, addr, sets):
        assert rebuild_block_addr(tag_bits(addr, sets), set_index(addr, sets), sets) == addr


class TestHomeBank:
    def test_interleaves_consecutive_blocks(self):
        banks = [home_bank(block, 4) for block in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_single_bank(self):
        assert home_bank(12345, 1) == 0


class TestStrideHash:
    def test_deterministic(self):
        assert stride_hash(123, 1) == stride_hash(123, 1)

    def test_salt_decorrelates(self):
        same = sum(
            stride_hash(addr, 1) % 64 == stride_hash(addr, 2) % 64
            for addr in range(1000)
        )
        # Two independent hashes agree on a 64-slot table ~1/64 of the time.
        assert same < 100

    def test_non_negative(self):
        for addr in range(0, 10000, 37):
            assert stride_hash(addr, 3) >= 0

    @given(st.integers(min_value=0, max_value=2**60), st.integers(min_value=0, max_value=8))
    def test_range_property(self, addr, salt):
        value = stride_hash(addr, salt)
        assert 0 <= value < 2**64
