"""Unit tests for configuration validation and derived sizing."""

import pytest

from repro.common.config import (
    CacheConfig,
    DirectoryConfig,
    DirectoryKind,
    EnergyConfig,
    NoCConfig,
    SharerFormat,
    SystemConfig,
    TimingConfig,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_derived_sizes(self):
        cfg = CacheConfig(sets=64, ways=4, block_bytes=64)
        assert cfg.blocks == 256
        assert cfg.capacity_bytes == 16 * 1024

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=48, ways=4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=64, ways=0)

    def test_rejects_odd_block_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(sets=64, ways=4, block_bytes=96)


class TestDirectoryConfig:
    def test_entries_from_ratio(self):
        cfg = DirectoryConfig(coverage_ratio=1.0, ways=8)
        # 16 cores x 256 L1 blocks = 4096 entries -> 512 sets x 8 ways.
        assert cfg.entries_for(16, 256) == 4096

    def test_eighth_provisioning(self):
        cfg = DirectoryConfig(coverage_ratio=0.125, ways=8)
        assert cfg.entries_for(16, 256) == 512

    def test_entries_rounded_to_power_of_two_sets(self):
        cfg = DirectoryConfig(coverage_ratio=1.0, ways=8)
        entries = cfg.entries_for(16, 192)  # 3072 raw -> 384 sets -> 256 sets
        assert entries == 256 * 8

    def test_entries_override(self):
        cfg = DirectoryConfig(entries_override=128, ways=4)
        assert cfg.entries_for(16, 256) == 128

    def test_minimum_one_set(self):
        cfg = DirectoryConfig(coverage_ratio=0.0001, ways=4)
        assert cfg.entries_for(2, 8) == 4

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            DirectoryConfig(coverage_ratio=0)

    def test_rejects_bad_override(self):
        with pytest.raises(ConfigError):
            DirectoryConfig(entries_override=0)


class TestNoCConfig:
    def test_nodes(self):
        assert NoCConfig(mesh_width=4, mesh_height=4).nodes == 16

    def test_rejects_zero_dim(self):
        with pytest.raises(ConfigError):
            NoCConfig(mesh_width=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            NoCConfig(hop_cycles=-1)


class TestTimingConfig:
    def test_defaults_valid(self):
        TimingConfig()

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            TimingConfig(memory_latency=-5)


class TestEnergyConfig:
    def test_defaults_valid(self):
        EnergyConfig()

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            EnergyConfig(noc_hop_pj=-1.0)


class TestSystemConfig:
    def test_defaults_build(self):
        cfg = SystemConfig()
        assert cfg.num_cores == 16
        assert cfg.directory_entries == 4096  # R=1, 16 x 256

    def test_mesh_must_cover_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=32)  # default 4x4 mesh too small

    def test_block_sizes_must_match(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                l1=CacheConfig(sets=64, ways=4, block_bytes=64),
                llc=CacheConfig(sets=1024, ways=16, block_bytes=128),
            )

    def test_small_llc_allowed(self):
        # Inclusion is enforced dynamically (back-invalidation), so an LLC
        # smaller than the aggregate L1s is legal, if unrealistic.
        cfg = SystemConfig(llc=CacheConfig(sets=64, ways=4))
        assert cfg.llc.blocks < cfg.num_cores * cfg.l1.blocks

    def test_with_directory_sweeps_ratio(self):
        cfg = SystemConfig()
        smaller = cfg.with_directory(coverage_ratio=0.125)
        assert smaller.directory_entries == 512
        assert cfg.directory_entries == 4096  # original untouched

    def test_with_directory_changes_kind(self):
        cfg = SystemConfig().with_directory(kind=DirectoryKind.CUCKOO)
        assert cfg.directory.kind is DirectoryKind.CUCKOO

    def test_describe_mentions_key_facts(self):
        desc = SystemConfig().describe()
        assert desc["cores"] == "16"
        assert "stash" in desc["directory"]
        assert "4x4 mesh" in desc["NoC"]

    def test_sharer_format_flows_through(self):
        cfg = SystemConfig(
            directory=DirectoryConfig(sharer_format=SharerFormat.COARSE_VECTOR)
        )
        assert "coarse" in cfg.describe()["directory"]


class TestPrivateL2Config:
    def test_l2_block_size_must_match(self):
        with pytest.raises(ConfigError):
            SystemConfig(l2=CacheConfig(sets=256, ways=8, block_bytes=128))

    def test_l2_must_cover_l1(self):
        with pytest.raises(ConfigError):
            SystemConfig(l2=CacheConfig(sets=32, ways=4))  # 128 < 256 blocks

    def test_valid_l2_accepted(self):
        cfg = SystemConfig(l2=CacheConfig(sets=256, ways=8))
        assert cfg.private_blocks_per_core == 2048
        # Directory provisioning follows the tracked (L2) level.
        assert cfg.directory_entries == 16 * 2048
