"""The exception hierarchy contract: everything derives from ReproError."""

import pytest

from repro.common.errors import (
    ConfigError,
    DirectoryError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    TraceError,
)


@pytest.mark.parametrize(
    "exc_type",
    [ConfigError, DirectoryError, InvariantViolation, ProtocolError, TraceError],
)
def test_all_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)


def test_invariant_violation_is_protocol_error():
    assert issubclass(InvariantViolation, ProtocolError)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise DirectoryError("boom")
