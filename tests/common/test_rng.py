"""Unit tests for the deterministic RNG."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(5)
        b = DeterministicRng(5)
        assert [a.randint(0, 100) for _ in range(50)] == [
            b.randint(0, 100) for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(5)
        b = DeterministicRng(6)
        assert [a.randint(0, 1000) for _ in range(20)] != [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_spawn_reproducible(self):
        a = DeterministicRng(9).spawn(3)
        b = DeterministicRng(9).spawn(3)
        assert a.randint(0, 10**6) == b.randint(0, 10**6)

    def test_spawn_streams_decorrelated(self):
        parent = DeterministicRng(9)
        a = parent.spawn(1)
        b = parent.spawn(2)
        assert [a.randint(0, 1000) for _ in range(20)] != [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_seed_property(self):
        assert DeterministicRng(17).seed == 17


class TestDraws:
    def test_randint_bounds(self):
        rng = DeterministicRng(1)
        values = [rng.randint(3, 7) for _ in range(200)]
        assert min(values) >= 3
        assert max(values) <= 7
        assert set(values) == {3, 4, 5, 6, 7}

    def test_random_unit_interval(self):
        rng = DeterministicRng(1)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_choice_and_shuffle(self):
        rng = DeterministicRng(2)
        items = list(range(10))
        assert rng.choice(items) in items
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestZipf:
    def test_zipf_in_range(self):
        rng = DeterministicRng(3)
        for _ in range(500):
            assert 0 <= rng.zipf_index(20, 0.8) < 20

    def test_zipf_skews_to_low_indices(self):
        rng = DeterministicRng(3)
        draws = [rng.zipf_index(100, 1.2) for _ in range(5000)]
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 90)
        assert head > 5 * max(tail, 1)

    def test_zipf_alpha_zero_is_uniform_range(self):
        rng = DeterministicRng(4)
        draws = {rng.zipf_index(8, 0.0) for _ in range(500)}
        assert draws == set(range(8))

    @given(st.integers(min_value=1, max_value=200), st.floats(min_value=0, max_value=3))
    def test_zipf_property_in_range(self, n, alpha):
        rng = DeterministicRng(5)
        assert 0 <= rng.zipf_index(n, alpha) < n
