"""Unit tests for the hierarchical statistics tree."""

from repro.common.stats import StatGroup, per_kilo, ratio


class TestCounters:
    def test_add_creates_on_first_use(self):
        group = StatGroup("g")
        group.add("hits")
        assert group.get("hits") == 1.0

    def test_add_amount(self):
        group = StatGroup("g")
        group.add("latency", 12.5)
        group.add("latency", 7.5)
        assert group.get("latency") == 20.0

    def test_missing_reads_zero(self):
        assert StatGroup("g").get("nothing") == 0.0

    def test_set_overwrites(self):
        group = StatGroup("g")
        group.add("size", 5)
        group.set("size", 2)
        assert group.get("size") == 2

    def test_counters_copy_is_isolated(self):
        group = StatGroup("g")
        group.add("x")
        copy = group.counters()
        copy["x"] = 99
        assert group.get("x") == 1


class TestHierarchy:
    def test_child_created_once(self):
        group = StatGroup("root")
        assert group.child("a") is group.child("a")

    def test_to_dict_flattens_with_paths(self):
        root = StatGroup("sys")
        root.add("top", 1)
        root.child("l1").add("hits", 3)
        root.child("l1").child("array").add("fills", 2)
        flat = root.to_dict()
        assert flat == {
            "sys.top": 1,
            "sys.l1.hits": 3,
            "sys.l1.array.fills": 2,
        }

    def test_walk_order_deterministic(self):
        root = StatGroup("s")
        root.child("b").add("x")
        root.child("a").add("y")
        paths = [p for p, _, _ in root.walk()]
        assert paths == sorted(paths)

    def test_total_sums_descendants(self):
        root = StatGroup("s")
        root.add("evictions", 1)
        root.child("a").add("evictions", 2)
        root.child("a").child("b").add("evictions", 4)
        assert root.total("evictions") == 7

    def test_merge_accumulates_recursively(self):
        a = StatGroup("a")
        a.child("sub").add("hits", 1)
        b = StatGroup("b")
        b.child("sub").add("hits", 2)
        b.child("sub").add("misses", 5)
        a.merge(b)
        assert a.child("sub").get("hits") == 3
        assert a.child("sub").get("misses") == 5

    def test_reset_zeroes_everything(self):
        root = StatGroup("s")
        root.add("x", 3)
        root.child("c").add("y", 4)
        root.reset()
        assert root.to_dict() == {}


class TestHelpers:
    def test_ratio(self):
        assert ratio(1, 2) == 0.5

    def test_ratio_zero_denominator_uses_default(self):
        assert ratio(5, 0) == 0.0
        assert ratio(5, 0, default=1.0) == 1.0

    def test_per_kilo(self):
        assert per_kilo(5, 1000) == 5.0
        assert per_kilo(1, 2000) == 0.5
        assert per_kilo(1, 0) == 0.0
