"""Unit tests for the hierarchical statistics tree."""

from repro.common.stats import StatGroup, per_kilo, ratio


class TestCounters:
    def test_add_creates_on_first_use(self):
        group = StatGroup("g")
        group.add("hits")
        assert group.get("hits") == 1.0

    def test_add_amount(self):
        group = StatGroup("g")
        group.add("latency", 12.5)
        group.add("latency", 7.5)
        assert group.get("latency") == 20.0

    def test_missing_reads_zero(self):
        assert StatGroup("g").get("nothing") == 0.0

    def test_set_overwrites(self):
        group = StatGroup("g")
        group.add("size", 5)
        group.set("size", 2)
        assert group.get("size") == 2

    def test_counters_copy_is_isolated(self):
        group = StatGroup("g")
        group.add("x")
        copy = group.counters()
        copy["x"] = 99
        assert group.get("x") == 1


class TestHierarchy:
    def test_child_created_once(self):
        group = StatGroup("root")
        assert group.child("a") is group.child("a")

    def test_to_dict_flattens_with_paths(self):
        root = StatGroup("sys")
        root.add("top", 1)
        root.child("l1").add("hits", 3)
        root.child("l1").child("array").add("fills", 2)
        flat = root.to_dict()
        assert flat == {
            "sys.top": 1,
            "sys.l1.hits": 3,
            "sys.l1.array.fills": 2,
        }

    def test_walk_order_deterministic(self):
        root = StatGroup("s")
        root.child("b").add("x")
        root.child("a").add("y")
        paths = [p for p, _, _ in root.walk()]
        assert paths == sorted(paths)

    def test_total_sums_descendants(self):
        root = StatGroup("s")
        root.add("evictions", 1)
        root.child("a").add("evictions", 2)
        root.child("a").child("b").add("evictions", 4)
        assert root.total("evictions") == 7

    def test_merge_accumulates_recursively(self):
        a = StatGroup("a")
        a.child("sub").add("hits", 1)
        b = StatGroup("b")
        b.child("sub").add("hits", 2)
        b.child("sub").add("misses", 5)
        a.merge(b)
        assert a.child("sub").get("hits") == 3
        assert a.child("sub").get("misses") == 5

    def test_reset_zeroes_everything(self):
        root = StatGroup("s")
        root.add("x", 3)
        root.child("c").add("y", 4)
        root.reset()
        assert root.to_dict() == {}


class TestBoundCells:
    """Regression contract for lazily bound cells vs ``reset``/``merge``.

    Controllers bind hot-path cells once (``counter()``) and increment them
    forever; epoch sampling and sweep aggregation call ``reset()`` and
    ``merge()`` around them.  These tests pin the interaction: bound handles
    must never go stale.
    """

    def test_counter_rebinds_same_cell(self):
        group = StatGroup("g")
        cell = group.counter("hits")
        assert group.counter("hits") is cell
        cell.add(2)
        assert group.get("hits") == 2.0

    def test_counter_binds_cell_created_by_add(self):
        group = StatGroup("g")
        group.add("hits", 3)
        cell = group.counter("hits")
        assert cell.value == 3.0
        group.add("hits")
        assert cell.value == 4.0

    def test_reset_keeps_bound_handles_live(self):
        group = StatGroup("g")
        cell = group.counter("hits")
        cell.add(5)
        group.reset()
        assert cell.value == 0.0
        cell.add(1)
        assert group.get("hits") == 1.0  # same cell, not a detached orphan

    def test_reset_drops_unbound_counters_only(self):
        group = StatGroup("g")
        group.counter("bound").add(1)
        group.add("unbound", 1)
        group.reset()
        assert "bound" in group.counters()
        assert "unbound" not in group.counters()
        group.add("unbound")  # reappears on next increment, as before
        assert group.get("unbound") == 1.0

    def test_binding_after_reset_works(self):
        group = StatGroup("g")
        group.add("hits", 9)
        group.reset()
        cell = group.counter("hits")
        cell.add(2)
        assert group.get("hits") == 2.0

    def test_merge_accumulates_into_bound_cells_in_place(self):
        dest = StatGroup("dest")
        cell = dest.counter("hits")
        cell.add(1)
        src = StatGroup("src")
        src.add("hits", 10)
        dest.merge(src)
        assert cell.value == 11.0  # the outstanding handle saw the merge
        assert src.get("hits") == 10.0  # source untouched

    def test_merge_then_reset_then_increment(self):
        dest = StatGroup("dest")
        cell = dest.counter("hits")
        src = StatGroup("src")
        src.add("hits", 7)
        dest.merge(src)
        dest.reset()
        cell.add(1)
        assert dest.get("hits") == 1.0

    def test_child_bound_cells_survive_parent_reset(self):
        root = StatGroup("root")
        cell = root.child("l1").counter("misses")
        cell.add(4)
        root.reset()
        assert cell.value == 0.0
        cell.add(2)
        assert root.to_dict() == {"root.l1.misses": 2.0}


class TestHelpers:
    def test_ratio(self):
        assert ratio(1, 2) == 0.5

    def test_ratio_zero_denominator_uses_default(self):
        assert ratio(5, 0) == 0.0
        assert ratio(5, 0, default=1.0) == 1.0

    def test_per_kilo(self):
        assert per_kilo(5, 1000) == 5.0
        assert per_kilo(1, 2000) == 0.5
        assert per_kilo(1, 0) == 0.0
