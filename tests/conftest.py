"""Shared fixtures and factories for the test suite.

The helpers build deliberately tiny systems (few sets, few ways) so tests
exercise eviction and conflict paths without large traces.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    DirectoryConfig,
    DirectoryKind,
    NoCConfig,
    SystemConfig,
)
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.sim.system import build_system


def tiny_config(
    kind: DirectoryKind = DirectoryKind.STASH,
    ratio: float = 1.0,
    num_cores: int = 4,
    dir_ways: int = 2,
    l1_sets: int = 4,
    l1_ways: int = 2,
    llc_sets: int = 64,
    llc_ways: int = 4,
    check_invariants: bool = True,
    **dir_kwargs,
) -> SystemConfig:
    """A 4-core system small enough to force evictions with short traces."""
    return SystemConfig(
        num_cores=num_cores,
        l1=CacheConfig(sets=l1_sets, ways=l1_ways),
        llc=CacheConfig(sets=llc_sets, ways=llc_ways),
        directory=DirectoryConfig(
            kind=kind, coverage_ratio=ratio, ways=dir_ways, **dir_kwargs
        ),
        noc=NoCConfig(mesh_width=2, mesh_height=2),
        check_invariants=check_invariants,
        seed=7,
    )


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Route the sweep runner's persistent cache into a session temp dir.

    Keeps the test run hermetic: nothing is read from or written to a
    developer's ``.repro_cache``, and parallel fan-out stays off unless a
    test opts in explicitly.
    """
    from repro.analysis import runner

    runner.configure(
        workers=1,
        cache_dir=str(tmp_path_factory.mktemp("repro_cache")),
        cache_enabled=True,
    )


@pytest.fixture
def rng() -> DeterministicRng:
    """A seeded RNG."""
    return DeterministicRng(42)


@pytest.fixture
def stats() -> StatGroup:
    """A fresh stats root."""
    return StatGroup("test")


@pytest.fixture
def tiny_stash_system():
    """A built 4-core stash-directory system (invariants on)."""
    return build_system(tiny_config(DirectoryKind.STASH, ratio=0.5))


@pytest.fixture
def tiny_sparse_system():
    """A built 4-core conventional sparse system (invariants on)."""
    return build_system(tiny_config(DirectoryKind.SPARSE, ratio=0.5))
