"""Unit + integration tests for adaptive stash throttling."""

import pytest

from repro.common.config import DirectoryConfig, DirectoryKind
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.core.adaptive import AdaptiveStashDirectory
from repro.directory import make_directory
from repro.directory.base import EvictionAction
from repro.sim.system import build_system
from tests.conftest import tiny_config


def make_adaptive(window=4, threshold=0.5, cooloff=3, entries=4, ways=2):
    return AdaptiveStashDirectory(
        DirectoryConfig(kind=DirectoryKind.ADAPTIVE_STASH, ways=ways),
        num_cores=4,
        entries=entries,
        rng=DeterministicRng(1),
        stats=StatGroup("dir"),
        window=window,
        threshold=threshold,
        cooloff=cooloff,
    )


def fill_private(d, addrs, core=1):
    for addr in addrs:
        d.allocate(addr).entry.grant_exclusive(core)


class TestConfigValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            make_adaptive(window=0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            make_adaptive(threshold=1.5)

    def test_rejects_bad_cooloff(self):
        with pytest.raises(ConfigError):
            make_adaptive(cooloff=0)


class TestThrottling:
    def test_stashes_while_discoveries_succeed(self):
        d = make_adaptive(window=4)
        for _ in range(8):
            d.note_discovery(found=True)
        assert d.stash_enabled
        fill_private(d, [0, 2])
        assert d.allocate(4).eviction.action is EvictionAction.STASH

    def test_suspends_after_false_heavy_window(self):
        d = make_adaptive(window=4, threshold=0.5)
        for _ in range(4):
            d.note_discovery(found=False)
        assert not d.stash_enabled
        assert d.stats.get("throttle_suspensions") == 1

    def test_suspended_evictions_invalidate(self):
        d = make_adaptive(window=4, cooloff=10)
        for _ in range(4):
            d.note_discovery(found=False)
        fill_private(d, [0, 2])
        result = d.allocate(4)
        assert result.eviction.action is EvictionAction.INVALIDATE
        assert d.stats.get("throttled_evictions") == 1

    def test_probation_reenables(self):
        d = make_adaptive(window=4, cooloff=2)
        for _ in range(4):
            d.note_discovery(found=False)
        fill_private(d, [0, 2])
        first = d.allocate(4)
        assert first.eviction.action is EvictionAction.INVALIDATE
        first.entry.grant_exclusive(2)  # keep the set full of private entries
        # Second conflicting eviction exhausts the cool-off: probation.
        assert d.allocate(6).eviction.action is EvictionAction.STASH
        assert d.stats.get("throttle_probations") == 1
        assert d.stash_enabled

    def test_window_below_threshold_keeps_stashing(self):
        d = make_adaptive(window=4, threshold=0.5)
        for found in (True, True, True, False):
            d.note_discovery(found)
        assert d.stash_enabled

    def test_window_resets_between_evaluations(self):
        d = make_adaptive(window=4, threshold=0.5)
        for found in (True, True, True, False):  # 25% false: fine
            d.note_discovery(found)
        for found in (True, True, False, False):  # exactly 50%: not above
            d.note_discovery(found)
        assert d.stash_enabled
        for found in (False, False, False, True):  # 75%: suspend
            d.note_discovery(found)
        assert not d.stash_enabled


class TestIntegration:
    def test_factory_builds_adaptive(self):
        d = make_directory(
            DirectoryConfig(kind=DirectoryKind.ADAPTIVE_STASH, ways=2),
            num_cores=4,
            entries=8,
            rng=DeterministicRng(1),
            stats=StatGroup("dir"),
        )
        assert isinstance(d, AdaptiveStashDirectory)

    def test_end_to_end_with_invariants(self):
        system = build_system(
            tiny_config(DirectoryKind.ADAPTIVE_STASH, ratio=0.25)
        )
        assert system.is_stash  # relaxed inclusion applies
        for i in range(400):
            system.access(i % 4, (i * 13) % 48, is_write=i % 4 == 0)
        system.check_invariants()

    def test_feedback_loop_wired(self):
        """The home controller reports discovery outcomes to the directory."""
        system = build_system(
            tiny_config(
                DirectoryKind.ADAPTIVE_STASH,
                entries_override=4,
                dir_ways=2,
                l1_sets=4,
                l1_ways=2,
            )
        )
        directory = system.directory
        # Stash a block hidden in core 0 (see protocol stash tests).
        for addr in (0, 2, 6):
            system.access(0, addr, is_write=False)
        hidden = next(a for a in (0, 2, 6) if system.llc.stash_bit(a))
        before = directory._window_total
        system.access(1, hidden, is_write=False)  # triggers discovery
        assert directory._window_total == before + 1
