"""Unit tests for the LLC-delegated discovery engine."""

import pytest

from repro.cache.l1 import L1Cache
from repro.common.config import CacheConfig, NoCConfig
from repro.common.errors import ProtocolError
from repro.common.mesi import MesiState
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.core.discovery import DiscoveryDemand, DiscoveryEngine
from repro.noc.network import Network
from repro.noc.traffic import MessageClass


def make_engine(num_cores=4):
    stats = StatGroup("root")
    network = Network(NoCConfig(mesh_width=2, mesh_height=2), stats.child("noc"))
    l1s = [
        L1Cache(core, CacheConfig(sets=2, ways=2), DeterministicRng(core), stats.child(f"l1.{core}"))
        for core in range(num_cores)
    ]
    engine = DiscoveryEngine(network, l1s, stats.child("discovery"))
    return engine, l1s, network, stats


class TestDiscoveryFinds:
    def test_finds_clean_hider_read_downgrades(self):
        engine, l1s, _, _ = make_engine()
        l1s[2].fill(0x40, MesiState.EXCLUSIVE, version=1)
        result = engine.discover(0, 0x40, DiscoveryDemand.READ)
        assert result.found and result.hider == 2
        assert result.hider_state is MesiState.EXCLUSIVE
        assert result.dirty_version is None
        assert l1s[2].state_of(0x40) is MesiState.SHARED

    def test_finds_dirty_hider_read_collects_data(self):
        engine, l1s, network, _ = make_engine()
        l1s[1].fill(0x40, MesiState.MODIFIED, version=9)
        result = engine.discover(0, 0x40, DiscoveryDemand.READ)
        assert result.dirty_version == 9
        assert l1s[1].state_of(0x40) is MesiState.SHARED
        assert network.traffic.messages(MessageClass.WRITEBACK) == 1

    def test_write_demand_invalidates_hider(self):
        engine, l1s, _, _ = make_engine()
        l1s[3].fill(0x40, MesiState.MODIFIED, version=5)
        result = engine.discover(0, 0x40, DiscoveryDemand.WRITE)
        assert result.dirty_version == 5
        assert l1s[3].state_of(0x40) is MesiState.INVALID

    def test_evict_demand_invalidates_hider(self):
        engine, l1s, _, _ = make_engine()
        l1s[0].fill(0x40, MesiState.SHARED, version=0)
        result = engine.discover(1, 0x40, DiscoveryDemand.EVICT)
        assert result.found and result.hider == 0
        assert l1s[0].state_of(0x40) is MesiState.INVALID


class TestDiscoveryMisses:
    def test_false_discovery_counted(self):
        engine, _, _, stats = make_engine()
        result = engine.discover(0, 0x40, DiscoveryDemand.READ)
        assert not result.found
        assert stats.child("discovery").get("false_discoveries") == 1
        assert engine.false_rate() == 1.0

    def test_exclude_core_is_not_probed(self):
        engine, l1s, _, _ = make_engine()
        l1s[2].fill(0x40, MesiState.SHARED, version=0)
        result = engine.discover(0, 0x40, DiscoveryDemand.READ, exclude_core=2)
        assert not result.found
        assert result.fanout == 3  # 4 cores minus the excluded one
        # The excluded core's copy survives untouched.
        assert l1s[2].state_of(0x40) is MesiState.SHARED


class TestDiscoveryInvariants:
    def test_two_hiders_is_a_protocol_bug(self):
        engine, l1s, _, _ = make_engine()
        l1s[0].fill(0x40, MesiState.SHARED, version=0)
        l1s[1].fill(0x40, MesiState.SHARED, version=0)
        with pytest.raises(ProtocolError):
            engine.discover(2, 0x40, DiscoveryDemand.READ)

    def test_traffic_accounting(self):
        engine, _, network, _ = make_engine()
        engine.discover(0, 0x40, DiscoveryDemand.READ)
        assert network.traffic.messages(MessageClass.DISCOVERY_PROBE) == 4
        assert network.traffic.messages(MessageClass.DISCOVERY_REPLY) == 4

    def test_broadcast_counters(self):
        engine, l1s, _, stats = make_engine()
        l1s[1].fill(0x40, MesiState.EXCLUSIVE, version=0)
        engine.discover(0, 0x40, DiscoveryDemand.READ)
        engine.discover(0, 0x80, DiscoveryDemand.READ)
        assert engine.broadcasts() == 2
        assert stats.child("discovery").get("successful_discoveries") == 1
        assert stats.child("discovery").get("false_discoveries") == 1
        assert engine.false_rate() == 0.5


class TestCandidateLists:
    def test_candidates_restrict_probes(self):
        engine, l1s, network, _ = make_engine()
        l1s[2].fill(0x40, MesiState.EXCLUSIVE, version=1)
        result = engine.discover(
            0, 0x40, DiscoveryDemand.READ, candidates=[2, 3]
        )
        assert result.found and result.hider == 2
        assert result.fanout == 2
        assert network.traffic.messages(MessageClass.DISCOVERY_PROBE) == 2

    def test_empty_candidates_is_instant_false_discovery(self):
        engine, _, _, stats = make_engine()
        result = engine.discover(0, 0x40, DiscoveryDemand.READ, candidates=[])
        assert not result.found
        assert result.latency == 0 and result.fanout == 0
        assert stats.child("discovery").get("false_discoveries") == 1

    def test_none_candidates_probe_everyone(self):
        engine, _, network, _ = make_engine()
        engine.discover(0, 0x40, DiscoveryDemand.READ, candidates=None)
        assert network.traffic.messages(MessageClass.DISCOVERY_PROBE) == 4
