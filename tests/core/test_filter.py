"""Unit + property tests for the discovery presence filter.

The one property that matters: the candidate set is ALWAYS a superset of
the true holders — a filtered discovery can never miss a hidden copy.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import DirectoryKind
from repro.common.errors import ConfigError, ProtocolError
from repro.common.stats import StatGroup
from repro.core.filter import PresenceFilter
from repro.sim.system import build_system
from tests.conftest import tiny_config


def make_filter(cores=4, slots=8):
    return PresenceFilter(cores, slots, StatGroup("filter"))


class TestValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            make_filter(cores=0)

    def test_rejects_non_power_of_two_slots(self):
        with pytest.raises(ConfigError):
            make_filter(slots=6)


class TestCounting:
    def test_add_then_may_hold(self):
        f = make_filter()
        assert not f.may_hold(1, 0x40)
        f.add(1, 0x40)
        assert f.may_hold(1, 0x40)

    def test_remove_clears(self):
        f = make_filter()
        f.add(1, 0x40)
        f.remove(1, 0x40)
        assert not f.may_hold(1, 0x40)

    def test_counting_not_boolean(self):
        f = make_filter()
        f.add(1, 0x40)
        f.add(1, 0x40)
        f.remove(1, 0x40)
        assert f.may_hold(1, 0x40)

    def test_underflow_raises(self):
        with pytest.raises(ProtocolError):
            make_filter().remove(1, 0x40)

    def test_aliasing_overcounts_safely(self):
        f = make_filter(slots=1)  # everything aliases to one slot
        f.add(1, 0x40)
        assert f.may_hold(1, 0x999)  # false positive: allowed
        f.remove(1, 0x40)
        assert not f.may_hold(1, 0x999)


class TestCandidates:
    def test_candidates_only_matching_cores(self):
        f = make_filter()
        f.add(0, 0x40)
        f.add(2, 0x40)
        assert f.candidates(0x40) == [0, 2]

    def test_exclude_core(self):
        f = make_filter()
        f.add(0, 0x40)
        f.add(2, 0x40)
        assert f.candidates(0x40, exclude_core=0) == [2]

    def test_empty_candidates(self):
        assert make_filter().candidates(0x40) == []

    def test_stats_recorded(self):
        f = make_filter()
        f.add(0, 0x40)
        f.candidates(0x40, exclude_core=1)
        assert f._stats.get("queries") == 1
        assert f._stats.get("probes_skipped") == 2  # cores 2, 3

    def test_storage_bits(self):
        assert PresenceFilter.storage_bits(16, 64, counter_bits=4) == 16 * 64 * 4


class TestEndToEnd:
    def test_filter_reduces_probe_fanout(self):
        def run(slots):
            system = build_system(
                tiny_config(
                    DirectoryKind.STASH, entries_override=4, dir_ways=2,
                    l1_sets=4, l1_ways=2, discovery_filter_slots=slots,
                )
            )
            # Stash block 0 hidden in core 0, then discover from core 1.
            for addr in (0, 2, 6):
                system.access(0, addr, is_write=False)
            hidden = next(a for a in (0, 2, 6) if system.llc.stash_bit(a))
            system.access(1, hidden, is_write=False)
            system.check_invariants()
            return system.stats.child("discovery").get("probes_sent")

        assert run(slots=64) < run(slots=0)

    def test_filtered_discovery_still_finds_hider(self):
        system = build_system(
            tiny_config(
                DirectoryKind.STASH, entries_override=4, dir_ways=2,
                l1_sets=4, l1_ways=2, discovery_filter_slots=64,
            )
        )
        for addr in (0, 2, 6):
            system.access(0, addr, is_write=False)
        hidden = next(a for a in (0, 2, 6) if system.llc.stash_bit(a))
        system.access(1, hidden, is_write=False)
        assert system.stats.child("discovery").get("successful_discoveries") == 1
        entry = system.directory.lookup(hidden, touch=False)
        assert entry.believed == {0, 1}
        system.check_invariants()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 11), st.booleans()),
        min_size=1,
        max_size=120,
    ),
    slots=st.sampled_from([1, 2, 8, 64]),
)
def test_property_filter_never_excludes_a_true_holder(program, slots):
    """Safety: after every access, every core actually holding a block is in
    the filter's candidate set for it — and the full invariant suite holds
    under filtered discovery (tiny slot counts maximize aliasing stress)."""
    system = build_system(
        tiny_config(
            DirectoryKind.STASH, entries_override=4, dir_ways=2,
            l1_sets=2, l1_ways=2, discovery_filter_slots=slots,
        )
    )
    filter_ = system.home.filter
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()
        for l1 in system.l1s:
            for block in l1.iter_blocks():
                assert filter_.may_hold(l1.core_id, block.addr)
