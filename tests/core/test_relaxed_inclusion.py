"""Unit tests for the strict/relaxed inclusion predicates."""

from repro.cache.l1 import L1Cache
from repro.cache.llc import SharedLLC
from repro.common.config import CacheConfig, DirectoryConfig, DirectoryKind
from repro.common.mesi import MesiState
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.core.relaxed_inclusion import (
    check_relaxed_inclusion,
    check_strict_inclusion,
)
from repro.directory.ideal import IdealDirectory


def make_parts(num_cores=2):
    stats = StatGroup("root")
    l1s = [
        L1Cache(core, CacheConfig(sets=2, ways=2), DeterministicRng(core), stats.child(f"l1.{core}"))
        for core in range(num_cores)
    ]
    llc = SharedLLC(
        CacheConfig(sets=16, ways=4), num_cores, DeterministicRng(9), stats.child("llc")
    )
    directory = IdealDirectory(DirectoryConfig(kind=DirectoryKind.IDEAL), num_cores, stats.child("dir"))
    return l1s, llc, directory


class TestStrictInclusion:
    def test_ok_when_tracked(self):
        l1s, llc, directory = make_parts()
        l1s[0].fill(5, MesiState.EXCLUSIVE, 0)
        directory.allocate(5).entry.grant_exclusive(0)
        report = check_strict_inclusion(l1s, directory)
        assert report.ok
        assert report.tracked == {5}

    def test_untracked_block_violates(self):
        l1s, llc, directory = make_parts()
        l1s[0].fill(5, MesiState.EXCLUSIVE, 0)
        report = check_strict_inclusion(l1s, directory)
        assert not report.ok
        assert "untracked" in report.violations[0]

    def test_missing_believed_holder_violates(self):
        l1s, llc, directory = make_parts()
        l1s[0].fill(5, MesiState.SHARED, 0)
        l1s[1].fill(5, MesiState.SHARED, 0)
        directory.allocate(5).entry.add_sharer(0)  # core 1 unrecorded
        report = check_strict_inclusion(l1s, directory)
        assert not report.ok

    def test_stale_believed_superset_is_fine(self):
        l1s, llc, directory = make_parts()
        l1s[0].fill(5, MesiState.SHARED, 0)
        entry = directory.allocate(5).entry
        entry.add_sharer(0)
        entry.add_sharer(1)  # stale belief about core 1: legal
        assert check_strict_inclusion(l1s, directory).ok


class TestRelaxedInclusion:
    def test_hidden_block_legal_with_stash_bit(self):
        l1s, llc, directory = make_parts()
        llc.fill(5, version=0)
        llc.set_stash_bit(5)
        l1s[0].fill(5, MesiState.EXCLUSIVE, 0)
        report = check_relaxed_inclusion(l1s, llc, directory)
        assert report.ok
        assert report.hidden == {5}

    def test_hidden_without_stash_bit_violates(self):
        l1s, llc, directory = make_parts()
        llc.fill(5, version=0)
        l1s[0].fill(5, MesiState.EXCLUSIVE, 0)
        report = check_relaxed_inclusion(l1s, llc, directory)
        assert not report.ok
        assert "stash bit" in report.violations[0]

    def test_hidden_without_llc_line_violates(self):
        l1s, llc, directory = make_parts()
        l1s[0].fill(5, MesiState.EXCLUSIVE, 0)
        report = check_relaxed_inclusion(l1s, llc, directory)
        assert not report.ok
        assert "LLC" in report.violations[0]

    def test_two_hiders_violate(self):
        l1s, llc, directory = make_parts()
        llc.fill(5, version=0)
        llc.set_stash_bit(5)
        l1s[0].fill(5, MesiState.SHARED, 0)
        l1s[1].fill(5, MesiState.SHARED, 0)
        report = check_relaxed_inclusion(l1s, llc, directory)
        assert not report.ok
        assert "multiple" in report.violations[0]

    def test_tracked_blocks_checked_as_strict(self):
        l1s, llc, directory = make_parts()
        llc.fill(5, version=0)
        l1s[0].fill(5, MesiState.EXCLUSIVE, 0)
        directory.allocate(5).entry.grant_exclusive(0)
        report = check_relaxed_inclusion(l1s, llc, directory)
        assert report.ok
        assert report.tracked == {5}
