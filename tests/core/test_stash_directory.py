"""Unit tests for the stash directory's victim policy — the contribution."""

from repro.common.config import DirectoryConfig, DirectoryKind, StashEligibility
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.core.stash_directory import StashDirectory
from repro.directory.base import EvictionAction


def make_stash(entries=4, ways=2, num_cores=4, eligibility=StashEligibility.ANY_PRIVATE):
    return StashDirectory(
        DirectoryConfig(
            kind=DirectoryKind.STASH, ways=ways, stash_eligibility=eligibility
        ),
        num_cores=num_cores,
        entries=entries,
        rng=DeterministicRng(1),
        stats=StatGroup("dir"),
    )


def fill_set_zero(d, specs):
    """Allocate entries mapping to set 0 (addrs 0, 2, 4 ... for 2 sets)."""
    for addr, holders in specs:
        entry = d.allocate(addr).entry
        if len(holders) == 1:
            entry.grant_exclusive(holders[0])
        else:
            for core in holders:
                entry.add_sharer(core)


class TestStashVictimSelection:
    def test_private_victim_is_stashed(self):
        d = make_stash()
        fill_set_zero(d, [(0, [1]), (2, [2])])
        result = d.allocate(4)
        assert result.eviction is not None
        assert result.eviction.action is EvictionAction.STASH

    def test_shared_entries_force_invalidation(self):
        d = make_stash()
        fill_set_zero(d, [(0, [1, 2]), (2, [2, 3])])
        result = d.allocate(4)
        assert result.eviction.action is EvictionAction.INVALIDATE
        assert d.stats.get("forced_invalidations") == 1

    def test_private_preferred_over_lru_shared(self):
        d = make_stash()
        # Entry 0 is shared (LRU), entry 2 is private (MRU).
        fill_set_zero(d, [(0, [1, 2]), (2, [3])])
        result = d.allocate(4)
        # Even though 0 is older, the private entry 2 must be the victim.
        assert result.eviction.entry.addr == 2
        assert result.eviction.action is EvictionAction.STASH

    def test_lru_among_eligible(self):
        d = make_stash(entries=8, ways=4)
        fill_set_zero(d, [(0, [1]), (2, [2]), (4, [3]), (6, [0])])
        d.lookup(0)  # 2 becomes the LRU private entry
        result = d.allocate(8)
        assert result.eviction.entry.addr == 2

    def test_eviction_stats_by_action(self):
        d = make_stash()
        fill_set_zero(d, [(0, [1]), (2, [2])])
        d.allocate(4)
        assert d.stats.get("evictions_stash") == 1
        assert d.stats.get("evictions_invalidate") == 0


class TestEligibilityVariants:
    def test_exclusive_only_skips_lone_sharer(self):
        d = make_stash(eligibility=StashEligibility.EXCLUSIVE_ONLY)
        # Lone-S entries: private but not E/M.
        fill_set_zero(d, [(0, [1]), (2, [2])])
        for addr in (0, 2):
            d.lookup(addr, touch=False).demote_owner()
        # Force them into shared-style (no owner) lone-S form.
        result = d.allocate(4)
        assert result.eviction.action is EvictionAction.INVALIDATE

    def test_exclusive_only_still_stashes_owners(self):
        d = make_stash(eligibility=StashEligibility.EXCLUSIVE_ONLY)
        fill_set_zero(d, [(0, [1]), (2, [2])])
        # grant_exclusive in the helper set owners; both are eligible.
        result = d.allocate(4)
        assert result.eviction.action is EvictionAction.STASH


class TestInheritedBehaviour:
    def test_is_sparse_structurally(self):
        d = make_stash()
        d.allocate(0)
        assert d.lookup(0).addr == 0
        d.deallocate(0)
        assert d.occupancy() == 0
