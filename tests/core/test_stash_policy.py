"""Unit tests for stash-eligibility rules."""

from repro.common.config import StashEligibility
from repro.core.stash_policy import eligible_ways, is_stash_eligible
from repro.directory.base import DirectoryEntry
from repro.directory.sharers import FullBitVector


def entry_with(owner=None, sharers=()):
    entry = DirectoryEntry(0x10, FullBitVector(16))
    if owner is not None:
        entry.grant_exclusive(owner)
    for core in sharers:
        entry.add_sharer(core)
    return entry


class TestAnyPrivate:
    def test_exclusive_entry_eligible(self):
        assert is_stash_eligible(entry_with(owner=3), StashEligibility.ANY_PRIVATE)

    def test_lone_sharer_eligible(self):
        assert is_stash_eligible(entry_with(sharers=[2]), StashEligibility.ANY_PRIVATE)

    def test_two_sharers_not_eligible(self):
        assert not is_stash_eligible(
            entry_with(sharers=[2, 5]), StashEligibility.ANY_PRIVATE
        )

    def test_empty_entry_not_eligible(self):
        assert not is_stash_eligible(entry_with(), StashEligibility.ANY_PRIVATE)


class TestExclusiveOnly:
    def test_exclusive_entry_eligible(self):
        assert is_stash_eligible(entry_with(owner=3), StashEligibility.EXCLUSIVE_ONLY)

    def test_lone_sharer_not_eligible(self):
        assert not is_stash_eligible(
            entry_with(sharers=[2]), StashEligibility.EXCLUSIVE_ONLY
        )

    def test_demoted_owner_not_eligible(self):
        entry = entry_with(owner=3)
        entry.demote_owner()
        assert not is_stash_eligible(entry, StashEligibility.EXCLUSIVE_ONLY)
        assert is_stash_eligible(entry, StashEligibility.ANY_PRIVATE)


class TestEligibleWays:
    def test_filters_pairs(self):
        entries = [entry_with(owner=1), entry_with(sharers=[1, 2]), entry_with(owner=2)]
        ways = [0, 1, 2]
        assert eligible_ways(entries, ways, StashEligibility.ANY_PRIVATE) == [0, 2]

    def test_empty_input(self):
        assert eligible_ways([], [], StashEligibility.ANY_PRIVATE) == []
