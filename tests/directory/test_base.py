"""Unit tests for the directory entry record."""

import pytest

from repro.common.errors import DirectoryError
from repro.directory.base import DirEntryState, DirectoryEntry
from repro.directory.sharers import FullBitVector


def make_entry(addr=0x10, cores=16):
    return DirectoryEntry(addr, FullBitVector(cores))


class TestTransitions:
    def test_fresh_entry_empty(self):
        entry = make_entry()
        assert entry.is_empty()
        assert entry.believed_count() == 0
        assert entry.owner is None

    def test_grant_exclusive(self):
        entry = make_entry()
        entry.grant_exclusive(3)
        assert entry.owner == 3
        assert entry.believed == {3}
        assert entry.targets() == [3]
        assert entry.state is DirEntryState.EXCLUSIVE

    def test_grant_exclusive_replaces_sharers(self):
        entry = make_entry()
        entry.add_sharer(1)
        entry.add_sharer(2)
        entry.grant_exclusive(5)
        assert entry.believed == {5}
        assert entry.targets() == [5]

    def test_add_sharer(self):
        entry = make_entry()
        entry.add_sharer(1)
        entry.add_sharer(4)
        assert entry.believed == {1, 4}
        assert entry.state is DirEntryState.SHARED

    def test_demote_owner_keeps_membership(self):
        entry = make_entry()
        entry.grant_exclusive(3)
        entry.demote_owner()
        assert entry.owner is None
        assert 3 in entry.believed
        assert entry.state is DirEntryState.SHARED

    def test_remove_core_clears_owner(self):
        entry = make_entry()
        entry.grant_exclusive(3)
        entry.remove_core(3)
        assert entry.owner is None
        assert entry.is_empty()

    def test_remove_absent_core_is_noop(self):
        entry = make_entry()
        entry.add_sharer(1)
        entry.remove_core(9)
        assert entry.believed == {1}


class TestPrivacy:
    def test_single_sharer_is_private(self):
        entry = make_entry()
        entry.add_sharer(2)
        assert entry.is_private()
        assert entry.sole_holder() == 2

    def test_exclusive_is_private(self):
        entry = make_entry()
        entry.grant_exclusive(2)
        assert entry.is_private()

    def test_two_sharers_not_private(self):
        entry = make_entry()
        entry.add_sharer(1)
        entry.add_sharer(2)
        assert not entry.is_private()

    def test_sole_holder_of_shared_rejected(self):
        entry = make_entry()
        entry.add_sharer(1)
        entry.add_sharer(2)
        with pytest.raises(DirectoryError):
            entry.sole_holder()

    def test_empty_not_private(self):
        assert not make_entry().is_private()
