"""Unit + property tests for the cuckoo directory baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import DirectoryConfig, DirectoryKind
from repro.common.errors import ConfigError, DirectoryError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.directory.base import EvictionAction
from repro.directory.cuckoo import CuckooDirectory


def make_cuckoo(entries=16, d=4, num_cores=4, max_path=8, seed=1):
    return CuckooDirectory(
        DirectoryConfig(kind=DirectoryKind.CUCKOO, ways=d),
        num_cores=num_cores,
        entries=entries,
        rng=DeterministicRng(seed),
        stats=StatGroup("dir"),
        max_path=max_path,
    )


class TestBasics:
    def test_allocate_lookup(self):
        d = make_cuckoo()
        d.allocate(10)
        assert d.lookup(10).addr == 10

    def test_double_allocate_rejected(self):
        d = make_cuckoo()
        d.allocate(10)
        with pytest.raises(DirectoryError):
            d.allocate(10)

    def test_deallocate(self):
        d = make_cuckoo()
        d.allocate(10)
        d.deallocate(10)
        assert d.lookup(10, touch=False) is None
        assert d.occupancy() == 0

    def test_entries_must_divide_by_ways(self):
        with pytest.raises(ConfigError):
            make_cuckoo(entries=10, d=4)

    def test_rejects_bad_max_path(self):
        with pytest.raises(ConfigError):
            make_cuckoo(max_path=0)


class TestRelocation:
    def test_fills_past_set_associative_conflicts(self):
        """Cuckoo should place far more entries than a same-size 1-way set
        could before its first eviction."""
        d = make_cuckoo(entries=64, d=4)
        evictions = 0
        for addr in range(48):  # 75% load
            result = d.allocate(addr)
            evictions += result.eviction is not None
        # At 75% load a 4-ary cuckoo should almost never evict.
        assert evictions <= 2
        assert d.occupancy() >= 46

    def test_eviction_when_full(self):
        d = make_cuckoo(entries=8, d=2)
        evictions = [d.allocate(addr).eviction for addr in range(20)]
        assert any(e is not None for e in evictions)
        for e in evictions:
            if e is not None:
                assert e.action is EvictionAction.INVALIDATE

    def test_new_entry_always_resident_after_allocate(self):
        """Regression: displacement chains must never evict the entry being
        inserted."""
        d = make_cuckoo(entries=8, d=2, max_path=3)
        for addr in range(200):
            d.allocate(addr)
            assert d.lookup(addr, touch=False) is not None

    def test_occupancy_never_exceeds_capacity(self):
        d = make_cuckoo(entries=8, d=2)
        for addr in range(100):
            d.allocate(addr)
        assert d.occupancy() <= 8

    def test_relocations_counted(self):
        d = make_cuckoo(entries=8, d=2)
        for addr in range(30):
            d.allocate(addr)
        assert d.stats.get("relocations") > 0


@settings(max_examples=30)
@given(
    seed=st.integers(0, 1000),
    addrs=st.lists(st.integers(0, 500), min_size=1, max_size=120, unique=True),
)
def test_property_allocate_then_always_findable(seed, addrs):
    """After any unique-address insertion sequence: every entry the directory
    claims to hold is findable, the new entry is always resident, and the
    live set is insertions minus evictions."""
    d = make_cuckoo(entries=16, d=4, seed=seed)
    live = set()
    for addr in addrs:
        result = d.allocate(addr)
        live.add(addr)
        if result.eviction is not None:
            live.discard(result.eviction.entry.addr)
        assert d.lookup(addr, touch=False) is not None
    assert {e.addr for e in d.iter_entries()} == live
    for addr in live:
        assert d.lookup(addr, touch=False) is not None
