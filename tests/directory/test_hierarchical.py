"""Unit + integration tests for the SCD-lite hierarchical directory."""

import pytest

from repro.common.config import DirectoryConfig, DirectoryKind
from repro.common.errors import ConfigError, DirectoryError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.directory.base import EvictionAction
from repro.directory.hierarchical import ScdDirectory
from repro.sim.system import build_system
from tests.conftest import tiny_config


def make_scd(lines=8, num_cores=16, pointers=2, leaf_size=4):
    return ScdDirectory(
        DirectoryConfig(kind=DirectoryKind.SCD),
        num_cores=num_cores,
        entries=lines,
        rng=DeterministicRng(1),
        stats=StatGroup("dir"),
        pointers=pointers,
        leaf_size=leaf_size,
    )


class TestLineModel:
    def test_few_sharers_single_line(self):
        d = make_scd()
        assert d.lines_for({3}) == 1
        assert d.lines_for({3, 9}) == 1

    def test_many_sharers_root_plus_leaves(self):
        d = make_scd(pointers=2, leaf_size=4)
        # Cores 0, 1, 5 span groups {0, 1}: root + 2 leaves.
        assert d.lines_for({0, 1, 5}) == 3

    def test_all_cores(self):
        d = make_scd(pointers=2, leaf_size=4, num_cores=16)
        assert d.lines_for(set(range(16))) == 1 + 4

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            make_scd(pointers=0)
        with pytest.raises(ConfigError):
            make_scd(leaf_size=0)


class TestLineAccounting:
    def test_allocation_charges_one_line(self):
        d = make_scd()
        d.allocate(1)
        d.allocate(2)
        assert d.total_lines() == 2

    def test_sharer_growth_charges_lines(self):
        d = make_scd(pointers=2, leaf_size=4)
        entry = d.allocate(1).entry
        entry.add_sharer(0)
        entry.add_sharer(1)
        assert d.total_lines() == 1
        entry.add_sharer(5)  # crosses the pointer limit: root + 2 leaves
        assert d.total_lines() == 3

    def test_sharer_shrink_releases_lines(self):
        d = make_scd(pointers=2, leaf_size=4)
        entry = d.allocate(1).entry
        for core in (0, 1, 5):
            entry.add_sharer(core)
        entry.remove_core(5)
        assert d.total_lines() == 1

    def test_grant_exclusive_collapses_to_one_line(self):
        d = make_scd(pointers=2, leaf_size=4)
        entry = d.allocate(1).entry
        for core in (0, 1, 5, 9):
            entry.add_sharer(core)
        entry.grant_exclusive(0)
        assert d.total_lines() == 1

    def test_deallocate_releases(self):
        d = make_scd()
        entry = d.allocate(1).entry
        for core in (0, 1, 5):
            entry.add_sharer(core)
        d.deallocate(1)
        assert d.total_lines() == 0
        assert d.occupancy() == 0


class TestEviction:
    def test_no_eviction_under_budget(self):
        d = make_scd(lines=8)
        for addr in range(8):
            assert d.allocate(addr).eviction is None

    def test_lru_block_evicted_when_full(self):
        d = make_scd(lines=4)
        for addr in range(4):
            d.allocate(addr)
        d.lookup(0)  # 1 becomes LRU
        result = d.allocate(99)
        assert result.eviction is not None
        assert result.eviction.entry.addr == 1
        assert result.eviction.action is EvictionAction.INVALIDATE

    def test_multi_line_entries_fill_budget_faster(self):
        d = make_scd(lines=6, pointers=2, leaf_size=4)
        wide = d.allocate(1).entry
        for core in (0, 1, 4, 8, 12):  # root + 4 leaves = 5 lines
            wide.add_sharer(core)
        assert d.total_lines() == 5
        d.allocate(2)  # 6 lines: at budget
        result = d.allocate(3)  # over: evicts LRU (the wide block)
        assert result.eviction.entry.addr == 1
        assert d.total_lines() <= 6

    def test_double_allocate_rejected(self):
        d = make_scd()
        d.allocate(1)
        with pytest.raises(DirectoryError):
            d.allocate(1)

    def test_utilization(self):
        d = make_scd(lines=8)
        d.allocate(1)
        d.allocate(2)
        assert d.utilization() == 0.25


class TestEndToEnd:
    def test_invariants_hold(self):
        system = build_system(tiny_config(DirectoryKind.SCD, ratio=0.5))
        for i in range(400):
            system.access(i % 4, (i * 13) % 48, is_write=i % 4 == 0)
        system.check_invariants()

    def test_no_set_conflicts_at_full_coverage(self):
        """SCD's selling point: at R=1 with single-line entries, there are
        essentially no conflict evictions (unlike set-associative sparse)."""
        from repro.analysis.experiments import clear_cache, make_config, simulate

        clear_cache()
        scd = simulate(
            "blackscholes-like", make_config(DirectoryKind.SCD, 1.0), ops_per_core=800
        )
        sparse = simulate(
            "blackscholes-like", make_config(DirectoryKind.SPARSE, 1.0), ops_per_core=800
        )
        assert scd.dir_induced_invalidations <= sparse.dir_induced_invalidations
        clear_cache()
