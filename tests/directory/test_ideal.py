"""Unit tests for the ideal (unbounded) directory."""

import pytest

from repro.common.config import DirectoryConfig, DirectoryKind
from repro.common.errors import DirectoryError
from repro.common.stats import StatGroup
from repro.directory.ideal import IdealDirectory


def make_ideal(num_cores=4):
    return IdealDirectory(
        DirectoryConfig(kind=DirectoryKind.IDEAL), num_cores, StatGroup("dir")
    )


class TestIdeal:
    def test_never_evicts(self):
        d = make_ideal()
        for addr in range(10_000):
            assert d.allocate(addr).eviction is None
        assert d.occupancy() == 10_000

    def test_lookup(self):
        d = make_ideal()
        assert d.lookup(3) is None
        d.allocate(3)
        assert d.lookup(3).addr == 3

    def test_double_allocate_rejected(self):
        d = make_ideal()
        d.allocate(3)
        with pytest.raises(DirectoryError):
            d.allocate(3)

    def test_deallocate(self):
        d = make_ideal()
        d.allocate(3)
        d.deallocate(3)
        assert d.lookup(3, touch=False) is None
        d.deallocate(3)  # idempotent

    def test_capacity_reported_unbounded(self):
        assert make_ideal().capacity == 0

    def test_iter_entries_sorted(self):
        d = make_ideal()
        for addr in (5, 1, 3):
            d.allocate(addr)
        assert [e.addr for e in d.iter_entries()] == [1, 3, 5]

    def test_untouched_lookup_not_counted(self):
        d = make_ideal()
        d.lookup(3, touch=False)
        assert d.stats.get("misses") == 0


class TestInLlcKind:
    def test_factory_maps_to_ideal_behaviour(self):
        from repro.common.config import DirectoryConfig, DirectoryKind
        from repro.common.rng import DeterministicRng
        from repro.common.stats import StatGroup
        from repro.directory import make_directory

        d = make_directory(
            DirectoryConfig(kind=DirectoryKind.IN_LLC),
            num_cores=4,
            entries=64,
            rng=DeterministicRng(1),
            stats=StatGroup("dir"),
        )
        assert isinstance(d, IdealDirectory)
        assert d.allocate(5).eviction is None

    def test_storage_counts_llc_lines_without_tags(self):
        from repro.analysis.experiments import make_config
        from repro.common.config import DirectoryKind
        from repro.energy.area import storage_of

        est = storage_of(make_config(DirectoryKind.IN_LLC, 1.0))
        assert est.entries == 1024 * 16          # one per LLC line
        sparse = storage_of(make_config(DirectoryKind.SPARSE, 1.0))
        assert est.bits_per_entry < sparse.bits_per_entry  # no tag bits
        assert est.total_kib > sparse.total_kib  # but 4x the entries

    def test_end_to_end_with_invariants(self):
        from repro.common.config import DirectoryKind
        from repro.sim.system import build_system
        from tests.conftest import tiny_config

        system = build_system(tiny_config(DirectoryKind.IN_LLC, ratio=1.0))
        for i in range(300):
            system.access(i % 4, (i * 5) % 40, is_write=i % 3 == 0)
        system.check_invariants()
        # Entries never outnumber LLC-resident blocks.
        assert system.directory.occupancy() <= system.llc.occupancy()
