"""Property tests for sharer representations at scaling-regime core counts.

The bank-parallel scaling work pushes configurations to 1024 cores, where
the sharer format is what decides whether directory state stays affordable
(the paper's §6 scaling argument, and SCD's two-level encoding for the
hierarchical format).  These tests pin, for N from 16 to 1024 and for
deliberately awkward non-power-of-two N (tail groups / tail clusters):

* the protocol-soundness invariant — ``targets()`` is always a superset
  of the live (added-and-not-removed) cores — for every format;
* ``targets()`` never names a core outside ``[0, N)`` (the clamping bug
  class the fuzzer's ``coarse-unclamped`` fault injects on purpose);
* HierarchicalRep's local-overflow semantics: an overflowed cluster
  broadcasts cluster-wide and is sticky, while *other* clusters keep
  exact pointers;
* the centralized constructor validation (every format rejects bad
  parameters with :class:`~repro.common.errors.ConfigError`);
* the storage model: hierarchical per-entry bits grow as O(sqrt(N) *
  log N) — strictly sublinear — while the full bit-vector grows as N.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SharerFormat
from repro.common.errors import ConfigError
from repro.directory.sharers import (
    CoarseVector,
    FullBitVector,
    HierarchicalRep,
    LimitedPointer,
    hier_auto_cluster,
    make_sharer_rep,
    sharer_storage_bits,
)

#: The weak-scaling sweep's core counts plus non-power-of-two stragglers
#: that leave a short tail group/cluster in the grouped formats.
SCALE_NS = [16, 64, 256, 1024]
RAGGED_NS = [17, 100, 513, 1000]


@pytest.mark.parametrize("num_cores", SCALE_NS + RAGGED_NS)
@pytest.mark.parametrize("fmt", list(SharerFormat))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_targets_superset_and_clamped_at_scale(fmt, num_cores, data):
    """After any history: live cores ⊆ targets() ⊆ [0, num_cores)."""
    rep = make_sharer_rep(fmt, num_cores, group=4, pointers=2)
    live = set()
    for add, core in data.draw(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, num_cores - 1)),
            max_size=60,
        )
    ):
        if add:
            rep.add(core)
            live.add(core)
        else:
            rep.remove(core)
            live.discard(core)
    targets = rep.targets()
    assert live.issubset(set(targets))
    assert all(0 <= t < num_cores for t in targets)
    rep.clear()
    assert rep.targets() == []


@pytest.mark.parametrize("num_cores", SCALE_NS + RAGGED_NS)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_hierarchical_overflow_is_local_and_sticky(num_cores, data):
    """Overflow hurts one cluster only, and never un-happens via remove."""
    rep = HierarchicalRep(num_cores)  # auto cluster = ceil(sqrt(N))
    cluster = rep.cluster
    num_clusters = (num_cores + cluster - 1) // cluster
    victim = data.draw(st.integers(0, num_clusters - 1))
    start = victim * cluster
    width = min(cluster, num_cores - start)
    # Overflow the victim cluster (needs pointers+1 distinct cores).
    overflow_cores = list(range(start, start + min(width, rep.pointers + 1)))
    for core in overflow_cores:
        rep.add(core)
    # One exact sharer in a different cluster keeps its precision.
    other = data.draw(
        st.integers(0, num_cores - 1).filter(lambda c: c // cluster != victim)
    )
    rep.add(other)
    targets = set(rep.targets())
    if len(overflow_cores) > rep.pointers:  # the cluster actually overflowed
        whole_cluster = set(range(start, start + width))
        assert whole_cluster.issubset(targets)
        # Sticky: removals cannot restore precision.
        for core in overflow_cores:
            rep.remove(core)
        assert whole_cluster.issubset(set(rep.targets()))
    # The precise cluster names exactly its one sharer, not its neighbours.
    other_start = (other // cluster) * cluster
    other_members = set(
        range(other_start, min(other_start + cluster, num_cores))
    )
    assert targets & other_members == {other}
    rep.remove(other)
    assert other not in set(rep.targets())


@pytest.mark.parametrize("num_cores", SCALE_NS)
def test_hierarchical_storage_is_sublinear(num_cores):
    """The O(sqrt(N)) pin: hier bits/entry ≪ full-bit-vector bits/entry."""
    hier = sharer_storage_bits(SharerFormat.HIERARCHICAL, num_cores)
    full = sharer_storage_bits(SharerFormat.FULL_BIT_VECTOR, num_cores)
    assert full == num_cores
    # ceil(sqrt(N)) clusters x (2 + 2 * ptr_bits) bits each.
    root = hier_auto_cluster(num_cores)
    ptr_bits = max(1, (root - 1).bit_length())
    assert hier == ((num_cores + root - 1) // root) * (2 + 2 * ptr_bits)
    # sqrt(N)*log(N) overtakes N's growth from 256 up; the monotone-ratio
    # test below pins the asymptotic claim itself.
    if num_cores >= 256:
        assert hier < full
    if num_cores >= 1024:
        assert hier < full // 2


def test_hierarchical_storage_shrinks_relative_to_full():
    """The ratio hier/full must fall monotonically with N (scaling claim)."""
    ratios = [
        sharer_storage_bits(SharerFormat.HIERARCHICAL, n)
        / sharer_storage_bits(SharerFormat.FULL_BIT_VECTOR, n)
        for n in SCALE_NS
    ]
    assert all(a > b for a, b in zip(ratios, ratios[1:]))


@pytest.mark.parametrize(
    "ctor",
    [
        lambda: FullBitVector(0),
        lambda: FullBitVector(-4),
        lambda: CoarseVector(16, group=0),
        lambda: CoarseVector(16, group=-1),
        lambda: LimitedPointer(16, pointers=0),
        lambda: HierarchicalRep(16, cluster=-2),
        lambda: HierarchicalRep(16, pointers=0),
        lambda: HierarchicalRep(0),
    ],
    ids=[
        "fbv-zero-cores", "fbv-negative-cores", "coarse-zero-group",
        "coarse-negative-group", "limited-zero-pointers",
        "hier-negative-cluster", "hier-zero-pointers", "hier-zero-cores",
    ],
)
def test_centralized_validation_rejects_bad_params(ctor):
    """Every format funnels through SharerRep.__init__'s checks."""
    with pytest.raises(ConfigError):
        ctor()


@pytest.mark.parametrize("fmt", list(SharerFormat))
@pytest.mark.parametrize("num_cores", [16, 100, 1024])
def test_fresh_clones_behave_like_new(fmt, num_cores):
    """fresh() skips validation but must yield an empty, working rep."""
    template = make_sharer_rep(fmt, num_cores, group=4, pointers=2)
    template.add(3)
    clone = template.fresh()
    assert clone.targets() == []
    clone.add(num_cores - 1)
    assert num_cores - 1 in set(clone.targets())
    # The template is unaffected by the clone's history.
    assert num_cores - 1 not in set(template.targets()) or num_cores - 1 == 3
