"""Unit + property tests for sharer-set representations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SharerFormat
from repro.common.errors import ConfigError
from repro.directory.sharers import (
    CoarseVector,
    FullBitVector,
    LimitedPointer,
    make_sharer_rep,
    sharer_storage_bits,
)

N = 16


class TestFullBitVector:
    def test_add_remove_exact(self):
        rep = FullBitVector(N)
        rep.add(3)
        rep.add(7)
        assert sorted(rep.targets()) == [3, 7]
        rep.remove(3)
        assert rep.targets() == [7]

    def test_clear(self):
        rep = FullBitVector(N)
        rep.add(1)
        rep.clear()
        assert rep.targets() == []

    def test_add_idempotent(self):
        rep = FullBitVector(N)
        rep.add(5)
        rep.add(5)
        assert rep.targets() == [5]

    def test_storage_bits(self):
        assert FullBitVector.storage_bits(16) == 16
        assert FullBitVector.storage_bits(64) == 64


class TestCoarseVector:
    def test_targets_cover_group(self):
        rep = CoarseVector(N, group=4)
        rep.add(5)
        assert sorted(rep.targets()) == [4, 5, 6, 7]

    def test_remove_cannot_clear(self):
        rep = CoarseVector(N, group=4)
        rep.add(5)
        rep.remove(5)
        assert 5 in rep.targets()  # imprecision is the point

    def test_clear_resets(self):
        rep = CoarseVector(N, group=4)
        rep.add(5)
        rep.clear()
        assert rep.targets() == []

    def test_partial_last_group(self):
        rep = CoarseVector(10, group=4)
        rep.add(9)
        assert sorted(rep.targets()) == [8, 9]

    def test_storage_bits(self):
        assert CoarseVector.storage_bits(16, group=4) == 4
        assert CoarseVector.storage_bits(10, group=4) == 3

    def test_rejects_zero_group(self):
        with pytest.raises(ConfigError):
            CoarseVector(N, group=0)


class TestLimitedPointer:
    def test_exact_until_overflow(self):
        rep = LimitedPointer(N, pointers=2)
        rep.add(3)
        rep.add(9)
        assert sorted(rep.targets()) == [3, 9]

    def test_overflow_broadcasts(self):
        rep = LimitedPointer(N, pointers=2)
        for core in (1, 2, 3):
            rep.add(core)
        assert rep.targets() == list(range(N))
        assert rep.overflowed

    def test_remove_before_overflow(self):
        rep = LimitedPointer(N, pointers=4)
        rep.add(3)
        rep.add(9)
        rep.remove(3)
        assert rep.targets() == [9]

    def test_clear_resets_overflow(self):
        rep = LimitedPointer(N, pointers=1)
        rep.add(1)
        rep.add(2)
        rep.clear()
        assert not rep.overflowed
        assert rep.targets() == []

    def test_duplicate_add_does_not_overflow(self):
        rep = LimitedPointer(N, pointers=2)
        rep.add(3)
        rep.add(3)
        rep.add(9)
        assert not rep.overflowed

    def test_storage_bits(self):
        # 4 pointers x 4 bits + overflow bit.
        assert LimitedPointer.storage_bits(16, pointers=4) == 17


class TestFactory:
    @pytest.mark.parametrize("fmt", list(SharerFormat))
    def test_make_each(self, fmt):
        rep = make_sharer_rep(fmt, N)
        rep.add(0)
        assert 0 in rep.targets()

    @pytest.mark.parametrize("fmt", list(SharerFormat))
    def test_storage_bits_positive(self, fmt):
        assert sharer_storage_bits(fmt, N) > 0

    def test_coarse_storage_smaller_than_full_at_scale(self):
        full = sharer_storage_bits(SharerFormat.FULL_BIT_VECTOR, 64)
        coarse = sharer_storage_bits(SharerFormat.COARSE_VECTOR, 64, group=8)
        limited = sharer_storage_bits(SharerFormat.LIMITED_POINTER, 64, pointers=4)
        assert coarse < full
        assert limited < full


@pytest.mark.parametrize("fmt", list(SharerFormat))
@settings(max_examples=40)
@given(data=st.data())
def test_property_targets_superset_of_live_holders(fmt, data):
    """Invariant the protocol relies on: after any add/remove history, the
    cores added-and-not-removed are always a subset of targets()."""
    rep = make_sharer_rep(fmt, N, group=4, pointers=2)
    live = set()
    for add, core in data.draw(
        st.lists(st.tuples(st.booleans(), st.integers(0, N - 1)), max_size=40)
    ):
        if add:
            rep.add(core)
            live.add(core)
        else:
            rep.remove(core)
            live.discard(core)
    assert live.issubset(set(rep.targets()))


class TestLimitedPointerOverflowSemantics:
    """Pinned contract: degrade-to-broadcast is one-way until clear().

    A remove() after overflow must neither resurrect precision (the
    forgotten pointers are unrecoverable) nor underflow anything; only
    clear() — driven by the entry's exact sharer counter reaching zero —
    restores the precise encoding.
    """

    def overflowed(self):
        rep = LimitedPointer(N, pointers=2)
        for core in (1, 2, 3):
            rep.add(core)
        assert rep.overflowed
        return rep

    def test_remove_after_overflow_keeps_broadcast(self):
        rep = self.overflowed()
        rep.remove(1)
        assert rep.overflowed
        assert rep.targets() == list(range(N))

    def test_remove_every_core_cannot_underflow(self):
        rep = self.overflowed()
        for _ in range(3):
            for core in range(N):
                rep.remove(core)
        assert rep.overflowed
        assert rep.ids == []
        assert rep.targets() == list(range(N))

    def test_add_after_overflow_keeps_pointer_list_empty(self):
        rep = self.overflowed()
        rep.add(7)
        assert rep.ids == []
        assert rep.targets() == list(range(N))

    def test_clear_restores_precision(self):
        rep = self.overflowed()
        rep.clear()
        rep.add(5)
        assert not rep.overflowed
        assert rep.targets() == [5]

    @settings(max_examples=60)
    @given(
        removals=st.lists(st.integers(0, N - 1), max_size=30),
        adds=st.lists(st.integers(0, N - 1), max_size=30),
    )
    def test_property_overflow_is_sticky(self, removals, adds):
        rep = LimitedPointer(N, pointers=2)
        for core in (1, 2, 3):
            rep.add(core)
        for core in removals:
            rep.remove(core)
        for core in adds:
            rep.add(core)
        assert rep.overflowed
        assert rep.targets() == list(range(N))


class TestCoarseVectorNonMultipleGroup:
    """Pinned contract: a short tail group never names phantom cores and
    storage always rounds up to whole group bits."""

    def test_tail_group_targets_are_clamped(self):
        rep = CoarseVector(6, group=4)
        rep.add(5)  # tail group {4, 5}
        assert sorted(rep.targets()) == [4, 5]

    def test_full_plus_tail_group(self):
        rep = CoarseVector(6, group=4)
        rep.add(0)
        rep.add(4)
        assert sorted(rep.targets()) == [0, 1, 2, 3, 4, 5]

    def test_single_core_tail(self):
        rep = CoarseVector(9, group=4)
        rep.add(8)
        assert rep.targets() == [8]

    @settings(max_examples=60)
    @given(
        num_cores=st.integers(1, 17),
        group=st.integers(1, 6),
        cores=st.data(),
    )
    def test_property_targets_never_exceed_num_cores(self, num_cores, group, cores):
        rep = CoarseVector(num_cores, group=group)
        for core in cores.draw(
            st.lists(st.integers(0, num_cores - 1), max_size=20)
        ):
            rep.add(core)
        assert all(0 <= t < num_cores for t in rep.targets())

    @pytest.mark.parametrize(
        "num_cores,group,bits",
        [(6, 4, 2), (5, 4, 2), (4, 4, 1), (9, 2, 5), (1, 4, 1), (17, 4, 5)],
    )
    def test_storage_bits_round_up(self, num_cores, group, bits):
        assert CoarseVector.storage_bits(num_cores, group=group) == bits
