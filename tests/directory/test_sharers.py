"""Unit + property tests for sharer-set representations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SharerFormat
from repro.common.errors import ConfigError
from repro.directory.sharers import (
    CoarseVector,
    FullBitVector,
    LimitedPointer,
    make_sharer_rep,
    sharer_storage_bits,
)

N = 16


class TestFullBitVector:
    def test_add_remove_exact(self):
        rep = FullBitVector(N)
        rep.add(3)
        rep.add(7)
        assert sorted(rep.targets()) == [3, 7]
        rep.remove(3)
        assert rep.targets() == [7]

    def test_clear(self):
        rep = FullBitVector(N)
        rep.add(1)
        rep.clear()
        assert rep.targets() == []

    def test_add_idempotent(self):
        rep = FullBitVector(N)
        rep.add(5)
        rep.add(5)
        assert rep.targets() == [5]

    def test_storage_bits(self):
        assert FullBitVector.storage_bits(16) == 16
        assert FullBitVector.storage_bits(64) == 64


class TestCoarseVector:
    def test_targets_cover_group(self):
        rep = CoarseVector(N, group=4)
        rep.add(5)
        assert sorted(rep.targets()) == [4, 5, 6, 7]

    def test_remove_cannot_clear(self):
        rep = CoarseVector(N, group=4)
        rep.add(5)
        rep.remove(5)
        assert 5 in rep.targets()  # imprecision is the point

    def test_clear_resets(self):
        rep = CoarseVector(N, group=4)
        rep.add(5)
        rep.clear()
        assert rep.targets() == []

    def test_partial_last_group(self):
        rep = CoarseVector(10, group=4)
        rep.add(9)
        assert sorted(rep.targets()) == [8, 9]

    def test_storage_bits(self):
        assert CoarseVector.storage_bits(16, group=4) == 4
        assert CoarseVector.storage_bits(10, group=4) == 3

    def test_rejects_zero_group(self):
        with pytest.raises(ConfigError):
            CoarseVector(N, group=0)


class TestLimitedPointer:
    def test_exact_until_overflow(self):
        rep = LimitedPointer(N, pointers=2)
        rep.add(3)
        rep.add(9)
        assert sorted(rep.targets()) == [3, 9]

    def test_overflow_broadcasts(self):
        rep = LimitedPointer(N, pointers=2)
        for core in (1, 2, 3):
            rep.add(core)
        assert rep.targets() == list(range(N))
        assert rep.overflowed

    def test_remove_before_overflow(self):
        rep = LimitedPointer(N, pointers=4)
        rep.add(3)
        rep.add(9)
        rep.remove(3)
        assert rep.targets() == [9]

    def test_clear_resets_overflow(self):
        rep = LimitedPointer(N, pointers=1)
        rep.add(1)
        rep.add(2)
        rep.clear()
        assert not rep.overflowed
        assert rep.targets() == []

    def test_duplicate_add_does_not_overflow(self):
        rep = LimitedPointer(N, pointers=2)
        rep.add(3)
        rep.add(3)
        rep.add(9)
        assert not rep.overflowed

    def test_storage_bits(self):
        # 4 pointers x 4 bits + overflow bit.
        assert LimitedPointer.storage_bits(16, pointers=4) == 17


class TestFactory:
    @pytest.mark.parametrize("fmt", list(SharerFormat))
    def test_make_each(self, fmt):
        rep = make_sharer_rep(fmt, N)
        rep.add(0)
        assert 0 in rep.targets()

    @pytest.mark.parametrize("fmt", list(SharerFormat))
    def test_storage_bits_positive(self, fmt):
        assert sharer_storage_bits(fmt, N) > 0

    def test_coarse_storage_smaller_than_full_at_scale(self):
        full = sharer_storage_bits(SharerFormat.FULL_BIT_VECTOR, 64)
        coarse = sharer_storage_bits(SharerFormat.COARSE_VECTOR, 64, group=8)
        limited = sharer_storage_bits(SharerFormat.LIMITED_POINTER, 64, pointers=4)
        assert coarse < full
        assert limited < full


@pytest.mark.parametrize("fmt", list(SharerFormat))
@settings(max_examples=40)
@given(data=st.data())
def test_property_targets_superset_of_live_holders(fmt, data):
    """Invariant the protocol relies on: after any add/remove history, the
    cores added-and-not-removed are always a subset of targets()."""
    rep = make_sharer_rep(fmt, N, group=4, pointers=2)
    live = set()
    for add, core in data.draw(
        st.lists(st.tuples(st.booleans(), st.integers(0, N - 1)), max_size=40)
    ):
        if add:
            rep.add(core)
            live.add(core)
        else:
            rep.remove(core)
            live.discard(core)
    assert live.issubset(set(rep.targets()))
