"""Unit tests for the conventional sparse directory."""

import pytest

from repro.common.config import DirectoryConfig, DirectoryKind
from repro.common.errors import ConfigError, DirectoryError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.directory.base import EvictionAction
from repro.directory.sparse import SparseDirectory


def make_sparse(entries=8, ways=2, num_cores=4):
    return SparseDirectory(
        DirectoryConfig(kind=DirectoryKind.SPARSE, ways=ways),
        num_cores=num_cores,
        entries=entries,
        rng=DeterministicRng(1),
        stats=StatGroup("dir"),
    )


class TestAllocLookup:
    def test_miss_then_hit(self):
        d = make_sparse()
        assert d.lookup(5) is None
        d.allocate(5)
        assert d.lookup(5).addr == 5

    def test_double_allocate_rejected(self):
        d = make_sparse()
        d.allocate(5)
        with pytest.raises(DirectoryError):
            d.allocate(5)

    def test_entries_must_divide_by_ways(self):
        with pytest.raises(ConfigError):
            make_sparse(entries=7, ways=2)

    def test_hit_miss_stats(self):
        d = make_sparse()
        d.lookup(5)
        d.allocate(5)
        d.lookup(5)
        assert d.stats.get("misses") == 1
        assert d.stats.get("hits") == 1


class TestEviction:
    def test_conflict_evicts_with_invalidate_action(self):
        d = make_sparse(entries=4, ways=2)  # 2 sets x 2 ways
        # Addresses 0, 2, 4 all map to set 0.
        d.allocate(0)
        d.allocate(2)
        result = d.allocate(4)
        assert result.eviction is not None
        assert result.eviction.action is EvictionAction.INVALIDATE
        assert result.eviction.entry.addr in (0, 2)

    def test_lru_victim_chosen(self):
        d = make_sparse(entries=4, ways=2)
        d.allocate(0)
        d.allocate(2)
        d.lookup(0)  # 2 becomes LRU
        result = d.allocate(4)
        assert result.eviction.entry.addr == 2

    def test_eviction_removes_victim(self):
        d = make_sparse(entries=4, ways=2)
        d.allocate(0)
        d.allocate(2)
        d.allocate(4)
        victims = {0, 2, 4} - {e.addr for e in d.iter_entries()}
        assert len(victims) == 1

    def test_no_eviction_when_room(self):
        d = make_sparse(entries=4, ways=2)
        assert d.allocate(0).eviction is None
        assert d.allocate(1).eviction is None  # different set

    def test_eviction_stats(self):
        d = make_sparse(entries=4, ways=2)
        for addr in (0, 2, 4):
            d.allocate(addr)
        assert d.stats.get("evictions") == 1
        assert d.stats.get("evictions_invalidate") == 1


class TestDeallocate:
    def test_deallocate_frees_slot(self):
        d = make_sparse(entries=4, ways=2)
        d.allocate(0)
        d.deallocate(0)
        assert d.lookup(0, touch=False) is None
        assert d.occupancy() == 0

    def test_deallocate_absent_is_noop(self):
        make_sparse().deallocate(99)

    def test_slot_reusable_after_deallocate(self):
        d = make_sparse(entries=4, ways=2)
        d.allocate(0)
        d.allocate(2)
        d.deallocate(0)
        assert d.allocate(4).eviction is None


class TestInspection:
    def test_occupancy(self):
        d = make_sparse()
        d.allocate(1)
        d.allocate(2)
        assert d.occupancy() == 2

    def test_iter_entries(self):
        d = make_sparse()
        d.allocate(1)
        d.allocate(2)
        assert {e.addr for e in d.iter_entries()} == {1, 2}

    def test_contains(self):
        d = make_sparse()
        d.allocate(1)
        assert d.contains(1)
        assert not d.contains(2)

    def test_capacity(self):
        assert make_sparse(entries=8).capacity == 8

    def test_set_occupancy(self):
        d = make_sparse(entries=4, ways=2)
        d.allocate(0)
        d.allocate(2)
        assert d.set_occupancy(0) == 2
        assert d.set_occupancy(1) == 0
