"""Unit tests for the Tardis timestamp directory."""

import pytest

from repro.common.config import DirectoryConfig, DirectoryKind
from repro.common.errors import DirectoryError
from repro.common.stats import StatGroup
from repro.directory import TimestampDirectory, make_directory
from repro.common.rng import DeterministicRng


def make_dir(num_cores=4):
    config = DirectoryConfig(kind=DirectoryKind.TARDIS)
    return TimestampDirectory(config, num_cores, StatGroup("dir"))


class TestLifecycle:
    def test_allocate_then_lookup(self):
        d = make_dir()
        entry = d.allocate(0x40)
        assert d.lookup(0x40) is entry
        assert entry.owner is None
        assert entry.wts == 0 and entry.rts == 0

    def test_double_allocate_rejected(self):
        d = make_dir()
        d.allocate(0x40)
        with pytest.raises(DirectoryError):
            d.allocate(0x40)

    def test_deallocate(self):
        d = make_dir()
        d.allocate(0x40)
        d.deallocate(0x40)
        assert d.lookup(0x40) is None
        assert not d.contains(0x40)
        d.deallocate(0x40)  # idempotent

    def test_occupancy_and_iteration_sorted(self):
        d = make_dir()
        for addr in (0x80, 0x40, 0xC0):
            d.allocate(addr)
        assert d.occupancy() == 3
        assert [e.addr for e in d.iter_entries()] == [0x40, 0x80, 0xC0]
        assert d.obs_gauges() == {"occupancy": 3}


class TestStats:
    def test_hit_miss_counters(self):
        d = make_dir()
        d.allocate(0x40)
        d.lookup(0x40)
        d.lookup(0x99)
        d.lookup(0x40, touch=False)  # untouched probes don't count
        flat = d.stats.to_dict()
        assert flat["dir.hits"] == 1
        assert flat["dir.misses"] == 1


class TestFactory:
    def test_make_directory_builds_timestamp_kind(self):
        config = DirectoryConfig(kind=DirectoryKind.TARDIS)
        d = make_directory(
            config, 4, 64, DeterministicRng(1), StatGroup("dir")
        )
        assert isinstance(d, TimestampDirectory)
        # Capacity is nominal: entries are bounded by LLC residency.
        assert d.capacity == 0
