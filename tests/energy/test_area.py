"""Unit tests for the storage/area model (T2)."""

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryConfig, DirectoryKind, SharerFormat
from repro.energy.area import entry_bits, relative_storage, storage_of


class TestEntryBits:
    def test_full_bit_vector_entry(self):
        cfg = DirectoryConfig(kind=DirectoryKind.SPARSE, ways=8)
        # 42-bit block addr, 512 sets -> 33 tag bits; 2 state + 1 valid +
        # 4 owner + 3 LRU + 16 sharers = 59.
        assert entry_bits(cfg, num_cores=16, sets=512, block_bytes=64) == 59

    def test_cuckoo_stores_full_address(self):
        sparse = DirectoryConfig(kind=DirectoryKind.SPARSE, ways=8)
        cuckoo = DirectoryConfig(kind=DirectoryKind.CUCKOO, ways=8)
        assert entry_bits(cuckoo, 16, 512, 64) > entry_bits(sparse, 16, 512, 64)

    def test_sharer_format_changes_bits(self):
        full = DirectoryConfig(sharer_format=SharerFormat.FULL_BIT_VECTOR)
        coarse = DirectoryConfig(sharer_format=SharerFormat.COARSE_VECTOR)
        assert entry_bits(coarse, 64, 512, 64) < entry_bits(full, 64, 512, 64)


class TestStorage:
    def test_stash_includes_llc_bit_overhead(self):
        stash = storage_of(make_config(DirectoryKind.STASH, 1.0))
        sparse = storage_of(make_config(DirectoryKind.SPARSE, 1.0))
        assert stash.stash_bit_overhead == 1024 * 16  # one bit per LLC line
        assert sparse.stash_bit_overhead == 0

    def test_eighth_stash_much_smaller_than_full_sparse(self):
        """The abstract's storage claim: stash@1/8 (incl. stash bits) is a
        small fraction of the 1x conventional directory."""
        ratio = relative_storage(
            make_config(DirectoryKind.STASH, 0.125),
            make_config(DirectoryKind.SPARSE, 1.0),
        )
        assert ratio < 0.30

    def test_entries_scale_with_ratio(self):
        full = storage_of(make_config(DirectoryKind.SPARSE, 1.0))
        eighth = storage_of(make_config(DirectoryKind.SPARSE, 0.125))
        assert eighth.entries == full.entries // 8

    def test_ideal_reported_as_duplicate_tag(self):
        est = storage_of(make_config(DirectoryKind.IDEAL, 1.0))
        assert est.entries == 16 * 256

    def test_total_kib_positive(self):
        assert storage_of(make_config()).total_kib > 0

    def test_relative_to_self_is_one(self):
        cfg = make_config(DirectoryKind.SPARSE, 1.0)
        assert relative_storage(cfg, cfg) == 1.0


class TestExtensionOverheads:
    def test_adaptive_stash_counts_stash_bits(self):
        est = storage_of(make_config(DirectoryKind.ADAPTIVE_STASH, 1.0))
        assert est.stash_bit_overhead == 1024 * 16

    def test_filter_bits_included(self):
        base = make_config(DirectoryKind.STASH, 0.125)
        with_filter = base.with_directory(discovery_filter_slots=64)
        extra = storage_of(with_filter).total_bits - storage_of(base).total_bits
        assert extra == 16 * 64 * 4  # cores x slots x counter bits
