"""Unit tests for the energy model (F10)."""

from repro.common.config import DirectoryKind, EnergyConfig
from repro.energy.model import EnergyBreakdown, energy_of
from repro.sim.results import SimulationResult
from tests.conftest import tiny_config


def make_result(kind=DirectoryKind.SPARSE, ratio=1.0, cycles=1000, stats=None):
    return SimulationResult(
        config=tiny_config(kind, ratio=ratio),
        cycles_per_core=[cycles],
        stats=stats
        or {
            "system.protocol.accesses": 100,
            "system.protocol.llc_hits": 20,
            "system.protocol.llc_misses": 5,
            "system.llc.writebacks_absorbed": 3,
            "system.directory.hits": 20,
            "system.directory.misses": 5,
            "system.memory.reads": 5,
            "system.memory.writes": 1,
            "system.noc.flit_hops.total": 400,
        },
    )


class TestBreakdown:
    def test_component_energies(self):
        energy = energy_of(make_result(), EnergyConfig())
        assert energy.l1_dynamic == 100 * 10.0
        assert energy.llc_dynamic == 28 * 50.0
        assert energy.directory_dynamic == 25 * 5.0
        assert energy.memory_dynamic == 6 * 500.0
        assert energy.noc_dynamic == 400 * 3.0

    def test_totals(self):
        energy = energy_of(make_result())
        assert energy.total == energy.dynamic_total + energy.directory_leakage
        assert energy.dynamic_total > 0

    def test_leakage_scales_with_entries(self):
        big = energy_of(make_result(ratio=2.0))
        small = energy_of(make_result(ratio=0.25))
        assert big.directory_leakage > small.directory_leakage

    def test_leakage_scales_with_time(self):
        short = energy_of(make_result(cycles=100))
        long = energy_of(make_result(cycles=10_000))
        assert long.directory_leakage > short.directory_leakage

    def test_ideal_has_no_leakage(self):
        energy = energy_of(make_result(kind=DirectoryKind.IDEAL))
        assert energy.directory_leakage == 0.0

    def test_normalized_to(self):
        a = EnergyBreakdown(10, 0, 0, 0, 0, 0)
        b = EnergyBreakdown(20, 0, 0, 0, 0, 0)
        assert b.normalized_to(a) == 2.0

    def test_normalized_to_zero_baseline(self):
        zero = EnergyBreakdown(0, 0, 0, 0, 0, 0)
        assert zero.normalized_to(zero) == 1.0

    def test_config_defaults_from_result(self):
        # energy_of without explicit config uses the result's config.
        assert energy_of(make_result()).total > 0
