"""End-to-end integration: full simulations with invariants enabled.

Every (directory kind x workload class) pair runs a real multi-core trace
with the complete invariant suite checked periodically and at the end —
the strongest correctness statement the test suite makes.
"""

import pytest

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind, SharerFormat
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.suite import SUITE_ORDER, build_workload

KINDS = [
    DirectoryKind.IDEAL,
    DirectoryKind.IN_LLC,
    DirectoryKind.SPARSE,
    DirectoryKind.CUCKOO,
    DirectoryKind.SCD,
    DirectoryKind.STASH,
    DirectoryKind.ADAPTIVE_STASH,
]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("workload", ["blackscholes-like", "fluidanimate-like", "mix"])
def test_invariants_hold_under_pressure(kind, workload):
    """R=1/8 provisioning, 16 cores, full invariant checking."""
    config = make_config(kind, ratio=0.125, check_invariants=True)
    trace = build_workload(workload, 16, 400, seed=11)
    result = Simulator(build_system(config), invariant_interval=512).run(trace)
    assert result.total_accesses == 16 * 400


@pytest.mark.parametrize("kind", KINDS)
def test_all_workloads_complete(kind):
    """Every suite workload completes on every organization (no invariants,
    broader coverage)."""
    config = make_config(kind, ratio=0.25)
    for workload in SUITE_ORDER:
        trace = build_workload(workload, 16, 120, seed=3)
        result = Simulator(build_system(config)).run(trace)
        assert result.total_accesses == 16 * 120


@pytest.mark.parametrize(
    "fmt", [SharerFormat.FULL_BIT_VECTOR, SharerFormat.COARSE_VECTOR, SharerFormat.LIMITED_POINTER]
)
@pytest.mark.parametrize("kind", [DirectoryKind.SPARSE, DirectoryKind.STASH])
def test_sharer_formats_preserve_correctness(fmt, kind):
    """Imprecise sharer encodings cost traffic, never correctness."""
    config = make_config(kind, ratio=0.25, sharer_format=fmt, check_invariants=True)
    trace = build_workload("mix", 16, 300, seed=5)
    Simulator(build_system(config), invariant_interval=512).run(trace)


def test_notification_mode_end_to_end():
    config = make_config(
        DirectoryKind.STASH, ratio=0.125, clean_notification=True, check_invariants=True
    )
    trace = build_workload("mix", 16, 400, seed=7)
    result = Simulator(build_system(config), invariant_interval=512).run(trace)
    # With notifications, stale state never forms: zero false discoveries.
    assert result.false_discoveries == 0


def test_core_scaling_end_to_end():
    for cores in (4, 8, 32):
        config = make_config(DirectoryKind.STASH, ratio=0.125, num_cores=cores,
                             check_invariants=True)
        trace = build_workload("mix", cores, 120, seed=9)
        Simulator(build_system(config), invariant_interval=512).run(trace)
