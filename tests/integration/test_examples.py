"""Smoke tests: every example script runs end-to-end and prints its report.

Run via subprocess with small parameters so the full suite stays fast; a
broken public API surfaces here the way a downstream user would hit it.
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args: str) -> str:
    with tempfile.TemporaryDirectory() as cache_dir:
        # Hermetic: the sweep runner's persistent cache goes to a temp dir,
        # not the developer's .repro_cache.
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / script), *args],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "directory_scaling.py",
        "workload_characterization.py",
        "custom_directory.py",
        "noc_and_dram_analysis.py",
        "moesi_comparison.py",
    } <= scripts


def test_quickstart():
    out = run_example("quickstart.py", "swaptions-like", "400")
    assert "stash  @ 1/8x" in out
    assert "norm. time" in out


def test_directory_scaling():
    out = run_example("directory_scaling.py", "swaptions-like", "300")
    assert "normalized execution time vs R" in out
    assert "stash" in out


def test_workload_characterization():
    out = run_example("workload_characterization.py", "300")
    assert "Sharing profile" in out
    assert "blackscholes-like" in out


def test_custom_directory():
    out = run_example("custom_directory.py", "mix", "400")
    assert "random-stash" in out


def test_noc_and_dram_analysis():
    out = run_example("noc_and_dram_analysis.py", "mix", "400")
    assert "hottest mesh links" in out
    assert "row-hit rate" in out


def test_moesi_comparison():
    out = run_example("moesi_comparison.py", "300")
    assert "O transitions" in out
