"""Golden-stats equivalence for the hot-path overhaul.

The single-access pipeline was reworked for throughput (precomputed NoC
tables, bound statistic counters, tuple-based grants, inlined replacement
paths) under one contract: **cycle counts and the full statistics tree are
bit-identical** to the pre-overhaul simulator for every directory kind.

``tests/data/golden_hotpath.json`` was captured from the pre-overhaul code
on a mixed workload through all five organizations.  These tests replay
that workload and compare both the per-core cycle counts and the flattened
``StatGroup`` tree key-for-key, value-for-value — so any optimization that
drops a counter, reorders an interleave decision or changes a latency by
one cycle fails loudly, naming the first divergent key.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind
from repro.sim.simulator import run_trace
from repro.workloads.suite import build_workload

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_hotpath.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

KINDS = {
    "sparse": DirectoryKind.SPARSE,
    "cuckoo": DirectoryKind.CUCKOO,
    "hierarchical": DirectoryKind.SCD,
    "ideal": DirectoryKind.IDEAL,
    "stash": DirectoryKind.STASH,
}


_RESULTS: dict = {}


def _run_kind(name: str):
    # Memoized per kind: the cycle and stats tests compare the same run.
    cached = _RESULTS.get(name)
    if cached is not None:
        return cached
    config = make_config(KINDS[name], ratio=GOLDEN["ratio"])
    trace = build_workload(
        GOLDEN["workload"],
        config.num_cores,
        GOLDEN["ops_per_core"],
        seed=GOLDEN["seed"],
        block_bytes=config.block_bytes,
    )
    result = _RESULTS[name] = run_trace(config, trace)
    return result


def test_golden_covers_every_kind():
    assert set(GOLDEN["kinds"]) == set(KINDS)
    assert GOLDEN["num_cores"] == 16


@pytest.mark.parametrize("name", sorted(KINDS))
def test_cycles_identical_to_golden(name):
    result = _run_kind(name)
    assert result.cycles_per_core == GOLDEN["kinds"][name]["cycles_per_core"]


@pytest.mark.parametrize("name", sorted(KINDS))
def test_stats_identical_to_golden(name):
    result = _run_kind(name)
    expected = GOLDEN["kinds"][name]["stats"]
    stats = result.stats
    # Key-set equality first, so a dropped or phantom counter is named.
    missing = sorted(set(expected) - set(stats))
    extra = sorted(set(stats) - set(expected))
    assert not missing and not extra, f"missing={missing} extra={extra}"
    for key in sorted(expected):
        assert stats[key] == expected[key], (
            f"{name}: stat {key!r} = {stats[key]} (golden {expected[key]})"
        )
