"""Golden equivalence: packed traces must not change a single bit.

Replays one workload through every directory organization in the
evaluation twice — once from the tuple-list :class:`Trace`, once from the
:class:`PackedTrace` stream form the sweep engine now feeds the simulator
— and requires identical per-core cycle counts and an identical flattened
statistics tree.  This is the contract that lets cached results, golden
captures and observed runs ignore which representation produced them.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import KINDS, make_config
from repro.sim.simulator import run_trace
from repro.sim.trace import PackedTrace
from repro.workloads.suite import build_workload

OPS = 400


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_packed_run_bit_identical(kind):
    config = make_config(kind, 0.25)
    trace = build_workload("mix", config.num_cores, OPS, seed=3)
    unpacked = run_trace(config, trace)
    packed = run_trace(config, PackedTrace.from_trace(trace))
    assert packed.cycles_per_core == unpacked.cycles_per_core
    assert packed.stats == unpacked.stats
    assert packed == unpacked


def test_packed_run_identical_across_seeds():
    config = make_config(KINDS[0], 0.5)
    for seed in (1, 2):
        trace = build_workload("canneal-like", config.num_cores, OPS, seed=seed)
        assert run_trace(config, trace) == run_trace(config, trace.pack())


def test_packed_run_identical_with_warmup():
    from repro.sim.simulator import Simulator
    from repro.sim.system import build_system

    config = make_config(KINDS[3], 0.125)
    trace = build_workload("mix", config.num_cores, OPS, seed=4)
    a = Simulator(build_system(config), warmup_ops=200).run(trace)
    b = Simulator(build_system(config), warmup_ops=200).run(trace.pack())
    assert a == b
