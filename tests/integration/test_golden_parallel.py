"""Golden equivalence: the parallel engine must not change a single bit.

The bank-parallel run-length batching engine (:mod:`repro.sim.parallel`)
is the third execution engine for the same machine; its contract is the
same golden one the vector engine carries.  Every test here compares
complete :class:`~repro.sim.results.SimulationResult` objects — per-core
cycles, the flattened statistics tree and the effective-tracking sample
series — against the serial interpreter and the vector engine, across
directory organizations, scan-window sizes, scan-worker counts and core
counts up to the paper's scaling regime.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import KINDS, make_config
from repro.common.config import DirectoryKind
from repro.sim.parallel import ParallelEngine, parallel_supports
from repro.sim.simulator import run_trace
from repro.sim.trace import PackedTrace
from repro.workloads.suite import build_workload

OPS = 400

#: Kinds with a flat view (the rest must fall back transparently).
FLAT_KINDS = tuple(
    k for k in KINDS
    if k in (DirectoryKind.SPARSE, DirectoryKind.IDEAL, DirectoryKind.STASH)
)


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_parallel_run_bit_identical(kind):
    config = make_config(kind, 0.25)
    trace = PackedTrace.from_trace(
        build_workload("mix", config.num_cores, OPS, seed=3)
    )
    interp = run_trace(config, trace)
    parallel = run_trace(config, trace, engine="parallel")
    assert parallel.cycles_per_core == interp.cycles_per_core
    assert parallel.stats == interp.stats
    assert parallel == interp
    if kind in FLAT_KINDS:
        assert parallel.engine == "parallel"
    else:
        assert parallel_supports(config) is not None
        assert parallel.engine == "interp"  # transparent fallback


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_tri_engine_64core_bit_identical(kind):
    """Interpreter, vector and parallel agree at the 64-core scale."""
    config = make_config(kind, 0.25, num_cores=64, seed=2)
    trace = PackedTrace.from_trace(build_workload("mix", 64, OPS, seed=7))
    interp = run_trace(config, trace)
    vector = run_trace(config, trace, engine="vector")
    parallel = run_trace(config, trace, engine="parallel")
    assert vector == interp
    assert parallel == interp


def test_parallel_workers_do_not_change_results():
    """Scan workers move work off the critical path, never the bits."""
    config = make_config(DirectoryKind.SPARSE, 0.5, num_cores=64, seed=4)
    trace = PackedTrace.from_trace(
        build_workload("falseshare-like", 64, OPS, seed=9)
    )
    reference = run_trace(config, trace, engine="parallel")
    for workers in (2, 3):
        result = run_trace(
            config, trace, engine="parallel", engine_workers=workers
        )
        assert result == reference, f"workers={workers} diverged"


def test_parallel_identical_across_window_sizes():
    """Scan-window slicing is invisible: any epoch_ops yields the same bits."""
    config = make_config(DirectoryKind.STASH, 0.25)
    trace = PackedTrace.from_trace(
        build_workload("mix", config.num_cores, OPS, seed=5)
    )
    reference = ParallelEngine(config).run(trace)
    for epoch_ops in (1, 7, OPS - 1, OPS, 4096):
        result = ParallelEngine(config, epoch_ops=epoch_ops).run(trace)
        assert result == reference, f"epoch_ops={epoch_ops} diverged"


def test_parallel_256core_smoke():
    """One point in the scaling regime: 256 cores, bit-identical to vector."""
    config = make_config(
        DirectoryKind.STASH, 0.125, num_cores=256, seed=1
    )
    trace = PackedTrace.from_trace(
        build_workload("weakscale-like", 256, 300, seed=1)
    )
    vector = run_trace(config, trace, engine="vector")
    parallel = run_trace(config, trace, engine="parallel", engine_workers=2)
    assert parallel == vector
    assert parallel.engine == "parallel"
