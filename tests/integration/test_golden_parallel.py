"""Golden equivalence: the parallel engine must not change a single bit.

The bank-parallel run-length batching engine (:mod:`repro.sim.parallel`)
is the third execution engine for the same machine; its contract is the
same golden one the vector engine carries.  Every test here compares
complete :class:`~repro.sim.results.SimulationResult` objects — per-core
cycles, the flattened statistics tree and the effective-tracking sample
series — against the serial interpreter and the vector engine, across
directory organizations, scan-window sizes, scan-worker counts and core
counts up to the paper's scaling regime.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import KINDS, make_config
from repro.common.config import DirectoryKind
from repro.sim.parallel import ParallelEngine, parallel_supports
from repro.sim.simulator import run_trace
from repro.sim.trace import PackedTrace
from repro.workloads.suite import build_workload

OPS = 400

#: Kinds with a flat view (the rest must fall back transparently).
FLAT_KINDS = tuple(
    k for k in KINDS
    if k in (DirectoryKind.SPARSE, DirectoryKind.IDEAL, DirectoryKind.STASH)
)


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_parallel_run_bit_identical(kind):
    config = make_config(kind, 0.25)
    trace = PackedTrace.from_trace(
        build_workload("mix", config.num_cores, OPS, seed=3)
    )
    interp = run_trace(config, trace)
    parallel = run_trace(config, trace, engine="parallel")
    assert parallel.cycles_per_core == interp.cycles_per_core
    assert parallel.stats == interp.stats
    assert parallel == interp
    if kind in FLAT_KINDS:
        assert parallel.engine == "parallel"
    else:
        assert parallel_supports(config) is not None
        assert parallel.engine == "interp"  # transparent fallback


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_tri_engine_64core_bit_identical(kind):
    """Interpreter, vector and parallel agree at the 64-core scale."""
    config = make_config(kind, 0.25, num_cores=64, seed=2)
    trace = PackedTrace.from_trace(build_workload("mix", 64, OPS, seed=7))
    interp = run_trace(config, trace)
    vector = run_trace(config, trace, engine="vector")
    parallel = run_trace(config, trace, engine="parallel")
    assert vector == interp
    assert parallel == interp


def test_parallel_workers_do_not_change_results():
    """Scan workers move work off the critical path, never the bits."""
    config = make_config(DirectoryKind.SPARSE, 0.5, num_cores=64, seed=4)
    trace = PackedTrace.from_trace(
        build_workload("falseshare-like", 64, OPS, seed=9)
    )
    reference = run_trace(config, trace, engine="parallel")
    for workers in (2, 3):
        result = run_trace(
            config, trace, engine="parallel", engine_workers=workers
        )
        assert result == reference, f"workers={workers} diverged"


def test_parallel_identical_across_window_sizes():
    """Scan-window slicing is invisible: any epoch_ops yields the same bits."""
    config = make_config(DirectoryKind.STASH, 0.25)
    trace = PackedTrace.from_trace(
        build_workload("mix", config.num_cores, OPS, seed=5)
    )
    reference = ParallelEngine(config).run(trace)
    for epoch_ops in (1, 7, OPS - 1, OPS, 4096):
        result = ParallelEngine(config, epoch_ops=epoch_ops).run(trace)
        assert result == reference, f"epoch_ops={epoch_ops} diverged"


def test_parallel_256core_smoke():
    """One point in the scaling regime: 256 cores, bit-identical to vector."""
    config = make_config(
        DirectoryKind.STASH, 0.125, num_cores=256, seed=1
    )
    trace = PackedTrace.from_trace(
        build_workload("weakscale-like", 256, 300, seed=1)
    )
    vector = run_trace(config, trace, engine="vector")
    parallel = run_trace(config, trace, engine="parallel", engine_workers=2)
    assert parallel == vector
    assert parallel.engine == "parallel"


def test_tri_engine_1024core_bit_identical():
    """The paper's largest machine: all three engines agree at 1024 cores."""
    config = make_config(DirectoryKind.STASH, 0.125, num_cores=1024, seed=1)
    trace = PackedTrace.from_trace(
        build_workload("weakscale-like", 1024, 120, seed=1)
    )
    interp = run_trace(config, trace)
    vector = run_trace(config, trace, engine="vector")
    parallel = run_trace(config, trace, engine="parallel", engine_workers=0)
    speculative = run_trace(
        config, trace, engine="parallel", engine_workers=0, speculate=True
    )
    assert vector == interp
    assert parallel == interp
    assert speculative == interp
    assert speculative.engine == "parallel"


@pytest.mark.parametrize("workers", [0, 2])
@pytest.mark.parametrize("speculate", [False, True])
def test_speculation_matrix_bit_identical(speculate, workers):
    """Speculation on/off x worker count never changes a bit.

    ``locks-like`` is contended enough that speculative runs are built,
    validated against remote interference, squashed and replayed through
    the serial path (``spec_min`` is dropped so short traces speculate).
    """
    config = make_config(DirectoryKind.STASH, 0.125, num_cores=16, seed=1)
    trace = PackedTrace.from_trace(build_workload("locks-like", 16, 1200, seed=1))
    interp = run_trace(config, trace)
    engine = ParallelEngine(
        config,
        workers=workers,
        speculate=speculate,
        spec_min=4 if speculate else None,
    )
    result = engine.run(trace)
    assert result == interp
    if speculate:
        assert engine.spec_stats["ops"] > 0
        assert engine.spec_stats["squashes"] > 0  # replay path exercised


def test_speculation_identical_across_window_sizes():
    """Scan-window slicing stays invisible with speculation enabled."""
    config = make_config(DirectoryKind.STASH, 0.25)
    trace = PackedTrace.from_trace(
        build_workload("mix", config.num_cores, OPS, seed=5)
    )
    reference = run_trace(config, trace)
    for epoch_ops in (7, 97, OPS, 4096):
        result = ParallelEngine(
            config, epoch_ops=epoch_ops, speculate=True, spec_min=4
        ).run(trace)
        assert result == reference, f"epoch_ops={epoch_ops} diverged"


def test_engine_workers_auto_resolution(monkeypatch):
    """'auto' backs off to 0 on starved hosts; explicit ints are honored."""
    import os

    from repro.common.errors import TraceError
    from repro.sim.parallel import _AUTO_WORKERS, resolve_engine_workers

    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert resolve_engine_workers("auto") == 0
    assert resolve_engine_workers(2) == 2  # explicit int wins over starvation
    monkeypatch.setattr(os, "cpu_count", lambda: _AUTO_WORKERS + 1)
    assert resolve_engine_workers("auto") == _AUTO_WORKERS
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert resolve_engine_workers("auto") == 0
    assert resolve_engine_workers(None) == 0
    assert resolve_engine_workers(0) == 0
    assert resolve_engine_workers("3") == 3
    with pytest.raises(TraceError):
        resolve_engine_workers("many")
    with pytest.raises(TraceError):
        resolve_engine_workers(-1)
    with pytest.raises(TraceError):
        resolve_engine_workers(True)


def test_neheap_compaction_bounds_churn():
    """Stale next-event bounds are compacted away, not accumulated.

    ``falseshare-like`` republishes bounds on nearly every op (every
    event dirties every sharer), the worst case for lazy deletion; the
    compaction threshold (stale > 2x live) must actually fire and keep
    the heap within a small multiple of the core count — while leaving
    the results bit-identical to the interpreter.
    """
    config = make_config(DirectoryKind.STASH, 0.125, num_cores=8, seed=1)
    trace = PackedTrace.from_trace(
        build_workload("falseshare-like", 8, 1200, seed=1)
    )
    interp = run_trace(config, trace)
    engine = ParallelEngine(config, epoch_ops=96, workers=0)
    result = engine.run(trace)
    assert result == interp
    stats = engine.heap_stats
    assert stats["neheap_compactions"] > 0
    assert stats["neheap_max"] <= 3 * 8 + 9
    assert stats["neheap_live"] == 0  # every core drained
