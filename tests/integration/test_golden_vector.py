"""Golden equivalence: the vector engine must not change a single bit.

Replays one workload through every directory organization in the
evaluation twice — once on the interpreter, once through
``run_trace(..., engine="vector")`` — and requires identical per-core
cycle counts and an identical flattened statistics tree.  Organizations
without a flat view must fall back to the interpreter transparently (the
result's ``engine`` marker records which engine actually ran).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import KINDS, make_config
from repro.common.config import DirectoryKind
from repro.sim.simulator import run_trace
from repro.sim.trace import PackedTrace
from repro.sim.vector import DEFAULT_EPOCH_OPS, VectorEngine, vector_supports
from repro.workloads.suite import build_workload

OPS = 400

#: Evaluation kinds the flat engine executes directly; the rest fall back.
FLAT_KINDS = tuple(
    k for k in KINDS
    if k in (DirectoryKind.SPARSE, DirectoryKind.IDEAL, DirectoryKind.STASH)
)


@pytest.mark.parametrize("kind", KINDS, ids=[k.value for k in KINDS])
def test_vector_run_bit_identical(kind):
    config = make_config(kind, 0.25)
    trace = PackedTrace.from_trace(
        build_workload("mix", config.num_cores, OPS, seed=3)
    )
    interp = run_trace(config, trace)
    vector = run_trace(config, trace, engine="vector")
    assert vector.cycles_per_core == interp.cycles_per_core
    assert vector.stats == interp.stats
    assert vector == interp
    assert interp.engine == "interp"
    if kind in FLAT_KINDS:
        assert vector.engine == "vector"
    else:
        assert vector_supports(config) is not None
        assert vector.engine == "interp"  # transparent fallback


@pytest.mark.parametrize("kind", FLAT_KINDS, ids=[k.value for k in FLAT_KINDS])
def test_vector_run_identical_across_workloads(kind):
    config = make_config(kind, 0.5)
    for workload, seed in (("canneal-like", 1), ("locks-like", 2)):
        trace = build_workload(workload, config.num_cores, OPS, seed=seed)
        interp = run_trace(config, trace)
        vector = run_trace(config, trace.pack(), engine="vector")
        assert vector == interp
        assert vector.engine == "vector"


def test_vector_run_identical_across_epoch_sizes():
    """Epoch batching is invisible: any slicing yields the same bits."""
    config = make_config(DirectoryKind.STASH, 0.25)
    trace = PackedTrace.from_trace(
        build_workload("mix", config.num_cores, OPS, seed=5)
    )
    reference = VectorEngine(config).run(trace)
    for epoch_ops in (1, 7, OPS - 1, OPS, DEFAULT_EPOCH_OPS):
        result = VectorEngine(config, epoch_ops=epoch_ops).run(trace)
        assert result == reference, f"epoch_ops={epoch_ops} diverged"
