"""The paper's claims, asserted as tests.

These are the reproduction's acceptance tests: if they pass, the *shape* of
the paper's results holds in our substrate (see EXPERIMENTS.md for the
measured numbers).
"""

import pytest

from repro.analysis.experiments import clear_cache, make_config, simulate
from repro.common.config import DirectoryKind

OPS = 1500
WORKLOADS = ["blackscholes-like", "canneal-like", "mix"]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def run(kind, ratio, workload, **kwargs):
    return simulate(workload, make_config(kind, ratio, **kwargs), ops_per_core=OPS)


class TestHeadlineClaim:
    """Abstract: 'Stash Directory can reduce space requirements to 1/8 of a
    conventional sparse directory, without compromising performance.'"""

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_stash_eighth_matches_full_sparse(self, workload):
        sparse_full = run(DirectoryKind.SPARSE, 1.0, workload)
        stash_eighth = run(DirectoryKind.STASH, 0.125, workload)
        # Within 8% of the fully provisioned conventional design.
        assert stash_eighth.normalized_time(sparse_full) < 1.08

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_sparse_eighth_is_hurt(self, workload):
        """The comparison is only meaningful if 1/8 actually pressures the
        conventional design on this workload class."""
        sparse_full = run(DirectoryKind.SPARSE, 1.0, workload)
        sparse_eighth = run(DirectoryKind.SPARSE, 0.125, workload)
        stash_eighth = run(DirectoryKind.STASH, 0.125, workload)
        assert sparse_eighth.normalized_time(sparse_full) > stash_eighth.normalized_time(
            sparse_full
        )

    def test_stash_close_to_ideal(self):
        ideal = run(DirectoryKind.IDEAL, 1.0, "mix")
        stash = run(DirectoryKind.STASH, 0.125, "mix")
        assert stash.normalized_time(ideal) < 1.10


class TestMechanism:
    def test_stash_eliminates_private_invalidations(self):
        sparse = run(DirectoryKind.SPARSE, 0.125, "blackscholes-like")
        stash = run(DirectoryKind.STASH, 0.125, "blackscholes-like")
        # Private-heavy workload: sparse invalidates heavily, stash ~never.
        assert sparse.dir_induced_invalidations > 100
        assert stash.dir_induced_invalidations < 0.05 * sparse.dir_induced_invalidations

    def test_stash_reduces_coverage_misses(self):
        sparse = run(DirectoryKind.SPARSE, 0.125, "blackscholes-like")
        stash = run(DirectoryKind.STASH, 0.125, "blackscholes-like")
        assert stash.coverage_misses < sparse.coverage_misses

    def test_discovery_overhead_is_modest(self):
        """Traffic with discoveries stays in the same ballpark as the fully
        provisioned baseline (the invalidation+refetch traffic it replaces
        is larger than the broadcast traffic it adds)."""
        sparse_full = run(DirectoryKind.SPARSE, 1.0, "blackscholes-like")
        sparse_eighth = run(DirectoryKind.SPARSE, 0.125, "blackscholes-like")
        stash_eighth = run(DirectoryKind.STASH, 0.125, "blackscholes-like")
        assert stash_eighth.total_flit_hops < sparse_eighth.total_flit_hops

    def test_effective_capacity_exceeds_physical(self):
        stash = run(DirectoryKind.STASH, 0.125, "blackscholes-like")
        entries = make_config(DirectoryKind.STASH, 0.125).directory_entries
        samples = stash.effective_tracking_samples
        assert samples and max(samples) > entries


class TestBaselineOrdering:
    def test_cuckoo_between_sparse_and_stash_when_conflict_limited(self):
        """In a conflict-limited regime (working set ~ capacity, skewed set
        indexing), cuckoo's relocation beats the set-associative sparse
        design; stash beats both.  (In *capacity*-limited regimes, e.g.
        canneal-like at low R, relocation cannot help — that ordering is
        exercised by the performance sweep instead.)"""
        workload = "blackscholes-like"
        sparse = run(DirectoryKind.SPARSE, 1.0, workload)
        cuckoo = run(DirectoryKind.CUCKOO, 1.0, workload)
        stash = run(DirectoryKind.STASH, 1.0, workload)
        assert cuckoo.dir_induced_invalidations < 0.75 * sparse.dir_induced_invalidations
        assert stash.dir_induced_invalidations <= cuckoo.dir_induced_invalidations
