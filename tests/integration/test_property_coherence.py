"""Property-based coherence testing: random programs, full invariants.

Hypothesis generates arbitrary multi-core access interleavings over a small
address space (maximizing conflict and sharing density), and after *every*
access the complete invariant suite must hold — SWMR, LLC inclusion,
strict/relaxed directory inclusion, and the data-value invariant.  This is
the test that hunts protocol race/corner bugs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import DirectoryKind, SharerFormat
from repro.sim.system import build_system
from tests.conftest import tiny_config

# Small space: 12 blocks over 4 cores with tiny caches = dense conflicts.
ACCESS = st.tuples(
    st.integers(min_value=0, max_value=3),   # core
    st.integers(min_value=0, max_value=11),  # block address
    st.booleans(),                           # is_write
)

PROGRAM = st.lists(ACCESS, min_size=1, max_size=120)

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize(
    "kind",
    [
        DirectoryKind.SPARSE,
        DirectoryKind.STASH,
        DirectoryKind.CUCKOO,
        DirectoryKind.SCD,
        DirectoryKind.IDEAL,
    ],
)
@SLOW
@given(program=PROGRAM)
def test_random_programs_preserve_all_invariants(kind, program):
    system = build_system(
        tiny_config(kind, entries_override=4, dir_ways=2, l1_sets=2, l1_ways=2)
    )
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()


@SLOW
@given(program=PROGRAM)
def test_random_programs_with_tiny_llc(program):
    """LLC eviction storms: the hardest path (back-inval + discovery-evict)."""
    system = build_system(
        tiny_config(
            DirectoryKind.STASH,
            entries_override=4,
            dir_ways=2,
            l1_sets=2,
            l1_ways=2,
            llc_sets=2,
            llc_ways=4,
        )
    )
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()


@pytest.mark.parametrize("fmt", [SharerFormat.COARSE_VECTOR, SharerFormat.LIMITED_POINTER])
@SLOW
@given(program=PROGRAM)
def test_random_programs_with_imprecise_sharers(fmt, program):
    system = build_system(
        tiny_config(
            DirectoryKind.STASH,
            entries_override=4,
            dir_ways=2,
            l1_sets=2,
            l1_ways=2,
            sharer_format=fmt,
            limited_pointers=1,
            coarse_group=2,
        )
    )
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()


@SLOW
@given(program=PROGRAM)
def test_random_programs_with_notifications(program):
    system = build_system(
        tiny_config(
            DirectoryKind.STASH,
            entries_override=4,
            dir_ways=2,
            l1_sets=2,
            l1_ways=2,
            clean_eviction_notification=True,
        )
    )
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()


@SLOW
@given(program=PROGRAM)
def test_reads_always_observe_last_write(program):
    """Explicit end-to-end data-value check, independent of the invariant
    suite's implementation: after each read, the reader's version equals
    the block's latest committed version."""
    system = build_system(
        tiny_config(DirectoryKind.STASH, entries_override=4, dir_ways=2,
                    l1_sets=2, l1_ways=2, check_invariants=False)
    )
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        if not is_write:
            observed = system.l1s[core].probe(addr, touch=False)
            latest = system.home.latest_version.get(addr, 0)
            assert observed is not None
            assert observed.version == latest


@SLOW
@given(program=PROGRAM)
def test_random_programs_with_private_l2(program):
    """Two-level private hierarchy: full invariants + internal inclusion."""
    from dataclasses import replace

    from repro.common.config import CacheConfig

    config = replace(
        tiny_config(
            DirectoryKind.STASH, entries_override=4, dir_ways=2,
            l1_sets=2, l1_ways=2,
        ),
        l2=CacheConfig(sets=2, ways=4),
    )
    system = build_system(config)
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()
        for private in system.l1s:
            private.check_internal_inclusion()


@SLOW
@given(program=PROGRAM)
def test_random_programs_with_every_extension_enabled(program):
    """The kitchen sink: MOESI + private L2 + presence filter + clean
    notifications + adaptive stash, invariants after every access."""
    from dataclasses import replace

    from repro.common.config import CacheConfig
    from repro.common.mesi import CoherenceProtocol

    config = replace(
        tiny_config(
            DirectoryKind.ADAPTIVE_STASH,
            entries_override=4,
            dir_ways=2,
            l1_sets=2,
            l1_ways=2,
            clean_eviction_notification=True,
            discovery_filter_slots=8,
        ),
        l2=CacheConfig(sets=2, ways=4),
        protocol=CoherenceProtocol.MOESI,
    )
    system = build_system(config)
    for core, addr, is_write in program:
        system.access(core, addr, is_write)
        system.check_invariants()
        for private in system.l1s:
            private.check_internal_inclusion()
