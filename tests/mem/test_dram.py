"""Unit tests for the banked open-page DRAM model."""

import pytest

from repro.common.config import DramConfig, DirectoryKind, MemoryModel
from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.mem import DramAdapter, make_memory
from repro.mem.dram import DramModel
from repro.sim.system import build_system
from tests.conftest import tiny_config


def make_dram(banks=4, row_blocks=8, pre=30, act=30, cas=30, xfer=4):
    config = DramConfig(
        banks=banks,
        row_blocks=row_blocks,
        precharge_cycles=pre,
        activate_cycles=act,
        cas_cycles=cas,
        transfer_cycles=xfer,
    )
    return DramModel(config, StatGroup("mem"))


class TestConfig:
    def test_rejects_zero_banks(self):
        with pytest.raises(ConfigError):
            DramConfig(banks=0)

    def test_rejects_zero_row(self):
        with pytest.raises(ConfigError):
            DramConfig(row_blocks=0)

    def test_rejects_negative_timing(self):
        with pytest.raises(ConfigError):
            DramConfig(cas_cycles=-1)


class TestMapping:
    def test_bank_interleaved(self):
        dram = make_dram(banks=4)
        assert [dram.bank_of(b) for b in range(5)] == [0, 1, 2, 3, 0]

    def test_row_groups_blocks(self):
        dram = make_dram(banks=1, row_blocks=8)
        assert dram.row_of(0) == dram.row_of(7)
        assert dram.row_of(8) == 1


class TestTiming:
    def test_first_access_is_row_empty(self):
        dram = make_dram()
        latency = dram.access(0, now=0.0, is_write=False)
        assert latency == 30 + 30 + 4  # activate + cas + transfer

    def test_row_hit_is_cheap(self):
        dram = make_dram(banks=1)
        dram.access(0, now=0.0, is_write=False)
        latency = dram.access(1, now=1000.0, is_write=False)  # same row
        assert latency == 30 + 4  # cas + transfer

    def test_row_miss_pays_precharge(self):
        dram = make_dram(banks=1, row_blocks=8)
        dram.access(0, now=0.0, is_write=False)
        latency = dram.access(8, now=1000.0, is_write=False)  # next row
        assert latency == 30 + 30 + 30 + 4

    def test_bank_conflict_waits(self):
        dram = make_dram(banks=1)
        first = dram.access(0, now=0.0, is_write=False)
        # Second access issued before the bank frees: pays the residual.
        second = dram.access(1, now=10.0, is_write=False)
        assert second == (first - 10) + 30 + 4

    def test_independent_banks_no_wait(self):
        dram = make_dram(banks=2)
        dram.access(0, now=0.0, is_write=False)
        latency = dram.access(1, now=0.0, is_write=False)  # other bank
        assert latency == 30 + 30 + 4

    def test_row_hit_rate(self):
        dram = make_dram(banks=1)
        dram.access(0, now=0.0, is_write=False)
        dram.access(1, now=500.0, is_write=False)
        dram.access(2, now=1000.0, is_write=False)
        assert dram.row_hit_rate() == pytest.approx(2 / 3)

    def test_read_write_counters(self):
        dram = make_dram()
        dram.access(0, 0.0, is_write=False)
        dram.access(1, 0.0, is_write=True)
        assert dram.reads() == 1
        assert dram.writes() == 1


class TestFactoryAndIntegration:
    def test_factory_flat_default(self):
        memory = make_memory(tiny_config(), StatGroup("mem"))
        assert not isinstance(memory, DramAdapter)

    def test_factory_dram(self):
        from dataclasses import replace

        config = replace(tiny_config(), memory_model=MemoryModel.DRAM)
        memory = make_memory(config, StatGroup("mem"))
        assert isinstance(memory, DramAdapter)
        assert memory.read(0, 0.0) > 0

    def test_end_to_end_with_dram_and_invariants(self):
        from dataclasses import replace

        config = replace(
            tiny_config(DirectoryKind.STASH, ratio=0.5),
            memory_model=MemoryModel.DRAM,
        )
        system = build_system(config)
        for i in range(200):
            system.access(i % 4, (i * 7) % 40, is_write=i % 3 == 0, now=float(i * 10))
        system.check_invariants()
        assert system.stats.child("memory").get("reads") > 0
