"""Unit tests for the main-memory model."""

from repro.common.config import TimingConfig
from repro.common.stats import StatGroup
from repro.mem.main_memory import MainMemory


def make_memory(latency=120):
    return MainMemory(TimingConfig(memory_latency=latency), StatGroup("mem"))


class TestMainMemory:
    def test_read_latency(self):
        assert make_memory(100).read() == 100

    def test_write_latency(self):
        assert make_memory(100).write() == 100

    def test_counters_separate(self):
        mem = make_memory()
        mem.read()
        mem.read()
        mem.write()
        assert mem.reads() == 2
        assert mem.writes() == 1

    def test_latency_property(self):
        assert make_memory(77).latency == 77
