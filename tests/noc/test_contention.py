"""Unit tests for per-link traffic attribution."""

import pytest

from repro.common.config import NoCConfig
from repro.common.stats import StatGroup
from repro.noc.contention import LinkTracker
from repro.noc.network import Network
from repro.noc.topology import Mesh2D
from repro.noc.traffic import DATA_FLITS, MessageClass


def make_tracker(w=4, h=4):
    return LinkTracker(Mesh2D(NoCConfig(mesh_width=w, mesh_height=h)))


class TestRoutes:
    def test_self_route_empty(self):
        assert make_tracker().xy_route(5, 5) == []

    def test_x_then_y(self):
        # Tile 0 -> tile 5 on a 4x4 mesh: east to 1, then south to 5.
        assert make_tracker().xy_route(0, 5) == [(0, 1), (1, 5)]

    def test_route_length_is_hop_count(self):
        tracker = make_tracker()
        for src in range(16):
            for dst in range(16):
                assert len(tracker.xy_route(src, dst)) == tracker.mesh.hops(src, dst)

    def test_links_are_adjacent(self):
        tracker = make_tracker()
        for a, b in tracker.xy_route(0, 15):
            assert b in tracker.mesh.neighbors(a)


class TestRecording:
    def test_flits_attributed_per_link(self):
        tracker = make_tracker()
        tracker.record(0, 2, flits=5)
        assert tracker.link_flits() == {(0, 1): 5, (1, 2): 5}

    def test_total_matches_flit_hops(self):
        tracker = make_tracker()
        tracker.record(0, 5, flits=1)   # 2 hops
        tracker.record(3, 0, flits=5)   # 3 hops
        assert tracker.total_flit_hops() == 2 * 1 + 3 * 5

    def test_hottest_links(self):
        tracker = make_tracker()
        tracker.record(0, 1, flits=10)
        tracker.record(0, 2, flits=1)
        assert tracker.hottest_links(1)[0] == ((0, 1), 11)

    def test_utilization_and_queueing(self):
        tracker = make_tracker()
        tracker.record(0, 1, flits=50)
        assert tracker.utilization((0, 1), elapsed_cycles=100) == 0.5
        assert tracker.estimated_queueing_delay((0, 1), 100) == pytest.approx(1.0)

    def test_queueing_capped_below_saturation(self):
        tracker = make_tracker()
        tracker.record(0, 1, flits=1000)
        assert tracker.estimated_queueing_delay((0, 1), 100) == pytest.approx(0.99 / 0.01)

    def test_max_utilization_empty(self):
        assert make_tracker().max_utilization(100) == 0.0

    def test_heatmap_renders_grid(self):
        tracker = make_tracker(2, 2)
        tracker.record(0, 3, flits=4)
        text = tracker.heatmap(elapsed_cycles=100)
        assert len(text.splitlines()) == 3  # title + 2 rows


class TestNetworkIntegration:
    def test_disabled_by_default(self):
        net = Network(NoCConfig(), StatGroup("noc"))
        assert net.links is None

    def test_enabled_records_sends(self):
        net = Network(NoCConfig(track_links=True), StatGroup("noc"))
        net.send(0, 2, MessageClass.DATA_RESPONSE)
        assert net.links.total_flit_hops() == 2 * DATA_FLITS

    def test_tracker_agrees_with_meter(self):
        net = Network(NoCConfig(track_links=True), StatGroup("noc"))
        net.send(0, 5, MessageClass.REQUEST)
        net.send(5, 0, MessageClass.DATA_RESPONSE)
        net.broadcast(0, [1, 2, 3], MessageClass.DISCOVERY_PROBE,
                      MessageClass.DISCOVERY_REPLY)
        assert net.links.total_flit_hops() == net.traffic.total_flit_hops()
