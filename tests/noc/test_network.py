"""Unit tests for the network facade."""

from repro.common.config import NoCConfig
from repro.common.stats import StatGroup
from repro.noc.network import Network
from repro.noc.traffic import MessageClass


def make_network(w=4, h=4):
    return Network(NoCConfig(mesh_width=w, mesh_height=h), StatGroup("noc"))


class TestSend:
    def test_send_returns_latency_and_records(self):
        net = make_network()
        latency = net.send(0, 3, MessageClass.REQUEST)
        assert latency == 3 * 2 + 1
        assert net.traffic.messages(MessageClass.REQUEST) == 1


class TestBroadcast:
    def test_broadcast_latency_is_worst_leg(self):
        net = make_network()
        latency, fanout = net.broadcast(
            0, [1, 15], MessageClass.DISCOVERY_PROBE, MessageClass.DISCOVERY_REPLY
        )
        assert fanout == 2
        # Farthest tile 15 is 6 hops: round trip 2*(6*2+1) = 26.
        assert latency == 26

    def test_broadcast_records_all_probes_and_replies(self):
        net = make_network()
        net.broadcast(
            0, range(1, 16), MessageClass.DISCOVERY_PROBE, MessageClass.DISCOVERY_REPLY
        )
        assert net.traffic.messages(MessageClass.DISCOVERY_PROBE) == 15
        assert net.traffic.messages(MessageClass.DISCOVERY_REPLY) == 15

    def test_empty_broadcast_costs_nothing(self):
        net = make_network()
        latency, fanout = net.broadcast(
            0, [], MessageClass.DISCOVERY_PROBE, MessageClass.DISCOVERY_REPLY
        )
        assert latency == 0 and fanout == 0
        assert net.traffic.total_messages() == 0
