"""Unit tests for the network facade."""

from repro.common.config import NoCConfig
from repro.common.stats import StatGroup
from repro.noc.network import Network
from repro.noc.traffic import MessageClass


def make_network(w=4, h=4):
    return Network(NoCConfig(mesh_width=w, mesh_height=h), StatGroup("noc"))


class TestSend:
    def test_send_returns_latency_and_records(self):
        net = make_network()
        latency = net.send(0, 3, MessageClass.REQUEST)
        assert latency == 3 * 2 + 1
        assert net.traffic.messages(MessageClass.REQUEST) == 1


class TestBroadcast:
    def test_broadcast_latency_is_worst_leg(self):
        net = make_network()
        latency, fanout = net.broadcast(
            0, [1, 15], MessageClass.DISCOVERY_PROBE, MessageClass.DISCOVERY_REPLY
        )
        assert fanout == 2
        # Farthest tile 15 is 6 hops: round trip 2*(6*2+1) = 26.
        assert latency == 26

    def test_broadcast_records_all_probes_and_replies(self):
        net = make_network()
        net.broadcast(
            0, range(1, 16), MessageClass.DISCOVERY_PROBE, MessageClass.DISCOVERY_REPLY
        )
        assert net.traffic.messages(MessageClass.DISCOVERY_PROBE) == 15
        assert net.traffic.messages(MessageClass.DISCOVERY_REPLY) == 15

    def test_empty_broadcast_costs_nothing(self):
        net = make_network()
        latency, fanout = net.broadcast(
            0, [], MessageClass.DISCOVERY_PROBE, MessageClass.DISCOVERY_REPLY
        )
        assert latency == 0 and fanout == 0
        assert net.traffic.total_messages() == 0


class TestPrecomputedTables:
    """Guard the table-lookup fast path of the hot-path overhaul.

    ``send``/``broadcast`` must never recompute routes per message: they
    read the N x N hop/latency tables the mesh builds once.  These tests
    fail if a refactor silently regresses to calling route arithmetic on
    the per-message path.
    """

    def test_network_holds_precomputed_tables(self):
        net = make_network()
        n = 16
        assert len(net._hops) == n and all(len(row) == n for row in net._hops)
        assert len(net._latencies) == n
        # The aliases are the mesh's own tables, not copies.
        assert net._hops is net.mesh.hop_table()
        assert net._latencies is net.mesh.latency_table()

    def test_send_does_not_recompute_routes(self, monkeypatch):
        net = make_network()

        def boom(*args, **kwargs):  # pragma: no cover - guard trips on call
            raise AssertionError("send() recomputed a route per message")

        monkeypatch.setattr(net.mesh, "hops", boom)
        monkeypatch.setattr(net.mesh, "latency", boom, raising=False)
        assert net.send(0, 3, MessageClass.REQUEST) == 3 * 2 + 1
        assert net.send(5, 5, MessageClass.DATA_RESPONSE) >= 0

    def test_broadcast_does_not_recompute_routes(self, monkeypatch):
        net = make_network()

        def boom(*args, **kwargs):  # pragma: no cover - guard trips on call
            raise AssertionError("broadcast() recomputed a route per probe")

        monkeypatch.setattr(net.mesh, "hops", boom)
        monkeypatch.setattr(net.mesh, "latency", boom, raising=False)
        latency, fanout = net.broadcast(
            0, range(1, 16), MessageClass.DISCOVERY_PROBE, MessageClass.DISCOVERY_REPLY
        )
        assert fanout == 15 and latency > 0

    def test_table_lookup_matches_route_arithmetic(self):
        net = make_network()
        for src in (0, 5, 15):
            for dst in (0, 7, 15):
                assert net._hops[src][dst] == net.mesh.hops(src, dst)
                assert net._latencies[src][dst] == net.mesh.latency(src, dst)
