"""Unit tests for the 2-D mesh topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import NoCConfig
from repro.common.errors import ConfigError
from repro.noc.topology import Mesh2D


def mesh(w=4, h=4, hop=2, router=1):
    return Mesh2D(NoCConfig(mesh_width=w, mesh_height=h, hop_cycles=hop, router_cycles=router))


class TestCoordinates:
    def test_row_major_ids(self):
        m = mesh(4, 4)
        assert m.coords(0) == (0, 0)
        assert m.coords(3) == (3, 0)
        assert m.coords(4) == (0, 1)
        assert m.coords(15) == (3, 3)

    def test_tile_inverse_of_coords(self):
        m = mesh(4, 2)
        for tile in range(m.nodes):
            assert m.tile(*m.coords(tile)) == tile

    def test_out_of_range_tile(self):
        with pytest.raises(ConfigError):
            mesh(2, 2).coords(4)

    def test_out_of_range_coords(self):
        with pytest.raises(ConfigError):
            mesh(2, 2).tile(2, 0)


class TestHops:
    def test_self_distance_zero(self):
        assert mesh().hops(5, 5) == 0

    def test_manhattan(self):
        m = mesh(4, 4)
        assert m.hops(0, 3) == 3
        assert m.hops(0, 12) == 3
        assert m.hops(0, 15) == 6

    def test_symmetric(self):
        m = mesh(4, 4)
        for a in range(16):
            for b in range(16):
                assert m.hops(a, b) == m.hops(b, a)

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_triangle_inequality(self, a, b, c):
        m = mesh(4, 4)
        assert m.hops(a, c) <= m.hops(a, b) + m.hops(b, c)


class TestLatency:
    def test_latency_formula(self):
        m = mesh(4, 4, hop=2, router=1)
        assert m.latency(0, 3) == 3 * 2 + 1

    def test_self_send_pays_router(self):
        assert mesh(4, 4, hop=2, router=1).latency(5, 5) == 1


class TestStructure:
    def test_neighbors_corner(self):
        assert sorted(mesh(4, 4).neighbors(0)) == [1, 4]

    def test_neighbors_center(self):
        assert sorted(mesh(4, 4).neighbors(5)) == [1, 4, 6, 9]

    def test_average_distance_4x4(self):
        # Mean Manhattan distance on a 4x4 mesh is 2.5.
        assert abs(mesh(4, 4).average_distance() - 2.5) < 1e-9

    def test_iter_tiles(self):
        assert list(mesh(2, 2).iter_tiles()) == [0, 1, 2, 3]
