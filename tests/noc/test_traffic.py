"""Unit tests for message classes and traffic metering."""

from repro.common.stats import StatGroup
from repro.noc.traffic import (
    DATA_CLASSES,
    DATA_FLITS,
    MessageClass,
    TrafficMeter,
    flits_of,
)


class TestFlits:
    def test_data_classes_weighted(self):
        for cls in DATA_CLASSES:
            assert flits_of(cls) == DATA_FLITS

    def test_control_classes_single_flit(self):
        assert flits_of(MessageClass.REQUEST) == 1
        assert flits_of(MessageClass.INV_ACK) == 1
        assert flits_of(MessageClass.DISCOVERY_PROBE) == 1

    def test_writeback_carries_data(self):
        assert MessageClass.WRITEBACK in DATA_CLASSES


class TestMeter:
    def test_record_counts_messages_and_hops(self):
        meter = TrafficMeter(StatGroup("noc"))
        meter.record(MessageClass.REQUEST, hops=3)
        meter.record(MessageClass.REQUEST, hops=1)
        assert meter.messages(MessageClass.REQUEST) == 2
        assert meter.flit_hops(MessageClass.REQUEST) == 4

    def test_data_flit_weighting(self):
        meter = TrafficMeter(StatGroup("noc"))
        meter.record(MessageClass.DATA_RESPONSE, hops=2)
        assert meter.flit_hops(MessageClass.DATA_RESPONSE) == 2 * DATA_FLITS

    def test_totals(self):
        meter = TrafficMeter(StatGroup("noc"))
        meter.record(MessageClass.REQUEST, hops=2)
        meter.record(MessageClass.DATA_RESPONSE, hops=1)
        assert meter.total_messages() == 2
        assert meter.total_flit_hops() == 2 + DATA_FLITS

    def test_by_class_omits_empty(self):
        meter = TrafficMeter(StatGroup("noc"))
        meter.record(MessageClass.REQUEST, hops=1)
        breakdown = meter.by_class()
        assert "request" in breakdown
        assert "invalidation" not in breakdown

    def test_zero_hop_message_counts(self):
        meter = TrafficMeter(StatGroup("noc"))
        meter.record(MessageClass.REQUEST, hops=0)
        assert meter.total_messages() == 1
        assert meter.total_flit_hops() == 0
