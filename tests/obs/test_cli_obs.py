"""CLI surface of the observability subsystem."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_epochs_jsonl, validate_chrome_trace

from tools.validate_trace import main as validate_main


class TestParser:
    def test_obs_defaults_are_off(self):
        args = build_parser().parse_args(["run"])
        assert args.obs_epoch == 0
        assert args.trace_events == 0
        assert args.obs_out is None
        assert args.check_invariants == 0

    def test_bare_trace_events_uses_default_capacity(self):
        args = build_parser().parse_args(["run", "--trace-events"])
        assert args.trace_events == 65_536

    def test_check_invariants_bare_and_with_interval(self):
        bare = build_parser().parse_args(["run", "--check-invariants"])
        assert bare.check_invariants == 1024
        tuned = build_parser().parse_args(
            ["run", "--check-invariants", "200"]
        )
        assert tuned.check_invariants == 200

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.ratio == 0.125
        assert args.out == "timeline"
        assert args.obs_epoch == 256
        assert args.trace_events == 65_536


class TestRunWithObs:
    def test_run_writes_all_exports(self, tmp_path, capsys):
        prefix = str(tmp_path / "demo")
        code = main([
            "run", "--workload", "mix", "--ops", "300", "--cores", "4",
            "--obs-epoch", "128", "--trace-events", "4096",
            "--check-invariants", "300", "--obs-out", prefix,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "traced" in out
        assert "sampled" in out
        for suffix in (".epochs.jsonl", ".epochs.csv", ".trace.json"):
            assert (tmp_path / f"demo{suffix}").exists()
        with open(tmp_path / "demo.trace.json") as handle:
            assert validate_chrome_trace(json.load(handle)) == []
        meta, epochs = read_epochs_jsonl(tmp_path / "demo.epochs.jsonl")
        assert meta["workload"] == "mix"
        assert epochs

    def test_run_without_obs_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["run", "--ops", "200", "--cores", "4"])
        assert code == 0
        assert "traced" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_replay_supports_obs(self, tmp_path, capsys):
        trace_path = tmp_path / "t.csv"
        assert main(["gen-trace", "--workload", "mix", "--ops", "200",
                     "--cores", "4", str(trace_path)]) == 0
        prefix = str(tmp_path / "rep")
        code = main(["replay", str(trace_path), "--cores", "4",
                     "--trace-events", "1024", "--obs-out", prefix])
        assert code == 0
        assert (tmp_path / "rep.trace.json").exists()
        # No sampler was requested, so no epoch files appear.
        assert not (tmp_path / "rep.epochs.jsonl").exists()

    def test_exports_pass_the_ci_validator(self, tmp_path, capsys):
        prefix = str(tmp_path / "ci")
        assert main([
            "run", "--ops", "300", "--cores", "4", "--obs-epoch", "64",
            "--trace-events", "2048", "--obs-out", prefix,
        ]) == 0
        capsys.readouterr()
        code = validate_main(
            [f"{prefix}.trace.json", f"{prefix}.epochs.jsonl"]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_validator_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace.json"
        bad.write_text(json.dumps({"traceEvents": "nope"}))
        assert validate_main([str(bad)]) == 1
        assert "traceEvents" in capsys.readouterr().err


class TestTimeline:
    def test_timeline_produces_divergence_report(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = main([
            "--no-cache", "timeline", "--ops", "400", "--cores", "4",
            "--obs-epoch", "128", "--trace-events", "4096",
            "--out", str(tmp_path / "tl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dir_eviction_inval_msgs" in out
        for kind in ("sparse", "stash"):
            assert (tmp_path / f"tl.{kind}.trace.json").exists()
            assert (tmp_path / f"tl.{kind}.epochs.jsonl").exists()
