"""EpochSampler: delta encoding, series reconstruction, gauges."""

from __future__ import annotations

import pytest

from repro.obs.epoch import DEFAULT_EPOCH_KEYS, EpochSampler


class FakeDirectory:
    def __init__(self):
        self.gauges = {"occupancy": 0.0}

    def obs_gauges(self):
        return dict(self.gauges)


class FakeLLC:
    def __init__(self):
        self.bits = 0

    def stash_bit_count(self):
        return self.bits


class FakeSystem:
    """Minimal system facade the sampler reads: stats + gauges."""

    def __init__(self):
        self.stats = {}
        self.directory = FakeDirectory()
        self.llc = FakeLLC()

    def flat_stats(self):
        return dict(self.stats)

    def effective_tracking(self):
        return self.directory.gauges["occupancy"] + self.llc.bits


KEY = "system.protocol.l1_misses"


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        EpochSampler(FakeSystem(), 0)


def test_default_keys_used_when_unspecified():
    sampler = EpochSampler(FakeSystem(), 64)
    assert sampler.keys == DEFAULT_EPOCH_KEYS


def test_delta_encoding_and_zero_omission():
    system = FakeSystem()
    sampler = EpochSampler(system, 64, keys=[KEY, "system.noc.msgs.total"])
    system.stats = {KEY: 10.0, "system.noc.msgs.total": 5.0}
    first = sampler.sample(64, 100.0)
    assert first["d"] == {KEY: 10.0, "system.noc.msgs.total": 5.0}

    # Only one counter moves: the quiet one is omitted entirely.
    system.stats = {KEY: 17.0, "system.noc.msgs.total": 5.0}
    second = sampler.sample(128, 220.0)
    assert second["d"] == {KEY: 7.0}
    assert second["op"] == 128
    assert second["clock"] == 220.0


def test_series_reconstructs_cumulative_values():
    system = FakeSystem()
    sampler = EpochSampler(system, 32, keys=[KEY])
    for total in (4.0, 4.0, 9.0, 20.0):
        system.stats = {KEY: total}
        sampler.sample(0, 0.0)
    assert sampler.series(KEY) == [4.0, 4.0, 9.0, 20.0]
    assert sampler.delta_series(KEY) == [4.0, 0.0, 5.0, 11.0]


def test_unknown_keys_are_skipped_not_errors():
    system = FakeSystem()
    sampler = EpochSampler(system, 32, keys=["nope.not.there", KEY])
    system.stats = {KEY: 3.0}
    record = sampler.sample(32, 1.0)
    assert record["d"] == {KEY: 3.0}


def test_gauges_are_absolute_and_prefixed():
    system = FakeSystem()
    sampler = EpochSampler(system, 32, keys=[KEY])
    system.directory.gauges = {"occupancy": 12.0, "full_sets": 2.0}
    system.llc.bits = 7
    record = sampler.sample(32, 1.0)
    assert record["g"]["dir_occupancy"] == 12.0
    assert record["g"]["dir_full_sets"] == 2.0
    assert record["g"]["stash_bits"] == 7.0
    assert record["g"]["effective_tracking"] == 19.0
    # Gauges stay absolute: a second identical sample repeats the values.
    again = sampler.sample(64, 2.0)
    assert again["g"] == record["g"]
    assert sampler.gauge_series("stash_bits") == [7.0, 7.0]


def test_field_names_cover_every_epoch():
    system = FakeSystem()
    sampler = EpochSampler(system, 32, keys=[KEY, "system.noc.msgs.total"])
    system.stats = {KEY: 1.0}
    sampler.sample(32, 1.0)
    system.stats = {KEY: 1.0, "system.noc.msgs.total": 4.0}
    sampler.sample(64, 2.0)
    counter_keys, gauge_names = sampler.field_names()
    assert KEY in counter_keys
    assert "system.noc.msgs.total" in counter_keys
    assert "dir_occupancy" in gauge_names
