"""EventRing semantics and the packed-arg codec."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    CAUSE_DIR_EVICT,
    CAUSE_LLC_EVICT,
    CAUSE_WRITE,
    EV_DIR_EVICT,
    EV_DISCOVERY,
    EV_GRANT,
    EV_INVAL,
    EV_LLC_EVICT,
    EV_MISS,
    EV_STASH_SPILL,
    EV_UPGRADE,
    EVENT_NAMES,
    EventRing,
    decode_args,
)


def _event(index: int) -> tuple:
    return (float(index), EV_MISS, index % 4, 0x100 + index, 0, 0)


class TestEventRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventRing(0)

    def test_append_and_order(self):
        ring = EventRing(8)
        for i in range(5):
            ring.append(_event(i))
        assert len(ring) == 5
        assert ring.total == 5
        assert ring.dropped == 0
        assert [event[0] for event in ring.events()] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_overflow_drops_oldest_and_counts(self):
        ring = EventRing(4)
        for i in range(10):
            ring.append(_event(i))
        assert ring.total == 10
        assert len(ring) == 4
        assert ring.dropped == 6
        # Oldest-first order over the survivors: the newest 4 events.
        assert [event[0] for event in ring.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_exactly_full_drops_nothing(self):
        ring = EventRing(3)
        for i in range(3):
            ring.append(_event(i))
        assert ring.dropped == 0
        assert [event[0] for event in ring.events()] == [0.0, 1.0, 2.0]

    def test_iter_matches_events(self):
        ring = EventRing(4)
        for i in range(6):
            ring.append(_event(i))
        assert list(ring) == ring.events()

    def test_counts_by_kind(self):
        ring = EventRing(16)
        ring.append((0.0, EV_MISS, 0, 1, 0, 0))
        ring.append((1.0, EV_MISS, 1, 2, 0, 1))
        ring.append((2.0, EV_GRANT, 0, 1, 9, 0))
        counts = ring.counts_by_kind()
        assert counts == {"miss": 2, "grant": 1}

    def test_clear(self):
        ring = EventRing(2)
        for i in range(5):
            ring.append(_event(i))
        ring.clear()
        assert len(ring) == 0
        assert ring.total == 0
        assert ring.dropped == 0
        assert ring.events() == []


class TestDecodeArgs:
    def test_every_kind_has_a_name(self):
        kinds = [EV_MISS, EV_GRANT, EV_UPGRADE, EV_DIR_EVICT, EV_STASH_SPILL,
                 EV_DISCOVERY, EV_INVAL, EV_LLC_EVICT]
        assert sorted(EVENT_NAMES) == sorted(kinds)

    def test_miss_flags(self):
        assert decode_args(EV_MISS, 0) == {"write": False, "coverage": False}
        assert decode_args(EV_MISS, 3) == {"write": True, "coverage": True}

    def test_grant_state(self):
        # write=1, state=M(3): 1 | (3 << 1) = 7
        assert decode_args(EV_GRANT, 7) == {"write": True, "state": "M"}
        # read grant in E(2): 2 << 1 = 4
        assert decode_args(EV_GRANT, 4) == {"write": False, "state": "E"}

    def test_dir_evict_targets(self):
        assert decode_args(EV_DIR_EVICT, 5) == {"targets": 5}

    def test_discovery(self):
        # found, write demand, fanout 15: 1 | (1 << 1) | (15 << 3)
        args = decode_args(EV_DISCOVERY, 1 | (1 << 1) | (15 << 3))
        assert args == {"found": True, "demand": "write", "fanout": 15}
        args = decode_args(EV_DISCOVERY, (2 << 1) | (3 << 3))
        assert args == {"found": False, "demand": "evict", "fanout": 3}

    def test_inval_causes(self):
        assert decode_args(EV_INVAL, CAUSE_WRITE | 4) == {
            "cause": "write", "destroyed": True}
        assert decode_args(EV_INVAL, CAUSE_DIR_EVICT) == {
            "cause": "dir_eviction", "destroyed": False}
        assert decode_args(EV_INVAL, CAUSE_LLC_EVICT | 4) == {
            "cause": "llc_eviction", "destroyed": True}

    def test_llc_evict_flags(self):
        assert decode_args(EV_LLC_EVICT, 3) == {"dirty": True, "stash_bit": True}

    def test_unknown_kind_is_raw(self):
        assert decode_args(99, 42) == {"raw": 42}
