"""Exporters: epoch JSONL/CSV roundtrips and Chrome-trace structure."""

from __future__ import annotations

import csv
import json

from repro.obs.epoch import EpochSampler
from repro.obs.events import (
    CAUSE_DIR_EVICT,
    EV_DIR_EVICT,
    EV_GRANT,
    EV_INVAL,
    EV_MISS,
    EventRing,
)
from repro.obs.export import (
    chrome_trace,
    read_epochs_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_epochs_csv,
    write_epochs_jsonl,
)

from .test_epoch import KEY, FakeSystem


def _sampled(num_epochs: int = 3) -> EpochSampler:
    system = FakeSystem()
    sampler = EpochSampler(system, 64, keys=[KEY])
    for index in range(num_epochs):
        system.stats = {KEY: float(10 * (index + 1))}
        system.llc.bits = index
        sampler.sample(64 * (index + 1), 100.0 * (index + 1))
    return sampler


def _filled_ring() -> EventRing:
    ring = EventRing(64)
    ring.append((10.0, EV_MISS, 0, 0x40, 0, 1))
    ring.append((10.0, EV_GRANT, 0, 0x40, 55, 1 | (3 << 1)))
    ring.append((12.0, EV_INVAL, 2, 0x40, 0, CAUSE_DIR_EVICT | 4))
    ring.append((12.0, EV_DIR_EVICT, -1, 0x80, 30, 2))
    return ring


class TestEpochsJsonl:
    def test_roundtrip(self, tmp_path):
        sampler = _sampled()
        path = tmp_path / "run.epochs.jsonl"
        write_epochs_jsonl(sampler, path, {"workload": "mix"})
        meta, epochs = read_epochs_jsonl(path)
        assert meta["format"] == "repro.obs.epochs"
        assert meta["interval"] == 64
        assert meta["epochs"] == 3
        assert meta["workload"] == "mix"
        assert epochs == sampler.epochs

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "run.epochs.jsonl"
        write_epochs_jsonl(_sampled(), path)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 4  # meta + 3 epochs
        for line in lines:
            json.loads(line)


class TestEpochsCsv:
    def test_columns_and_rows(self, tmp_path):
        sampler = _sampled()
        path = tmp_path / "run.epochs.csv"
        write_epochs_csv(sampler, path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        header, data = rows[0], rows[1:]
        assert header[:2] == ["op", "clock"]
        assert f"d_{KEY}" in header
        assert "g_stash_bits" in header
        assert len(data) == 3
        # First epoch: delta 10, stash bits 0.
        first = dict(zip(header, data[0]))
        assert float(first[f"d_{KEY}"]) == 10.0
        assert float(first["g_stash_bits"]) == 0.0


class TestChromeTrace:
    def test_document_is_valid(self, tmp_path):
        ring = _filled_ring()
        path = tmp_path / "run.trace.json"
        write_chrome_trace(ring, path, {"workload": "mix"})
        with open(path) as handle:
            document = json.load(handle)
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["workload"] == "mix"
        assert document["otherData"]["dropped_events"] == 0
        assert document["otherData"]["events_emitted"] == 4

    def test_span_vs_instant_phases(self):
        document = chrome_trace(_filled_ring())
        by_name = {}
        for event in document["traceEvents"]:
            if event.get("ph") != "M":
                by_name.setdefault(event["name"], event)
        assert by_name["grant"]["ph"] == "X"
        assert by_name["grant"]["dur"] == 55
        assert by_name["miss"]["ph"] == "i"
        assert by_name["invalidation"]["args"]["cause"] == "dir_eviction"
        assert by_name["invalidation"]["args"]["destroyed"] is True

    def test_home_events_get_home_track(self):
        document = chrome_trace(_filled_ring())
        evict = next(
            event for event in document["traceEvents"]
            if event.get("name") == "dir_eviction"
        )
        assert evict["tid"] == 10_000
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event.get("ph") == "M"
        }
        assert "home" in names
        assert "core 0" in names

    def test_timestamps_sorted_even_if_ring_is_not(self):
        ring = EventRing(8)
        ring.append((20.0, EV_MISS, 0, 1, 0, 0))
        ring.append((5.0, EV_MISS, 1, 2, 0, 0))
        document = chrome_trace(ring)
        assert validate_chrome_trace(document) == []

    def test_zero_duration_spans_get_min_width(self):
        ring = EventRing(4)
        ring.append((1.0, EV_GRANT, 0, 1, 0, 0))
        document = chrome_trace(ring)
        span = next(e for e in document["traceEvents"] if e.get("ph") == "X")
        assert span["dur"] == 1

    def test_overflow_is_reported(self):
        ring = EventRing(2)
        for index in range(5):
            ring.append((float(index), EV_MISS, 0, index, 0, 0))
        document = chrome_trace(ring)
        assert document["otherData"]["dropped_events"] == 3
        assert document["otherData"]["events_retained"] == 2


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_rejects_missing_fields_and_regressions(self):
        document = {
            "traceEvents": [
                {"name": "a", "ph": "i", "ts": 5, "pid": 1, "tid": 0, "s": "t"},
                {"name": "b", "ph": "i", "ts": 2, "pid": 1, "tid": 0, "s": "t"},
                {"ph": "X", "ts": 9, "pid": 1, "tid": 0},
            ],
            "otherData": {},
        }
        problems = validate_chrome_trace(document)
        assert any("dropped_events" in problem for problem in problems)
        assert any("timestamp" in problem for problem in problems)
        assert any("missing 'dur'" in problem for problem in problems)
        assert any("missing 'name'" in problem for problem in problems)
