"""Observer end-to-end: null-probe equivalence, divergence, cadences."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind
from repro.obs import ObsConfig, attach, chrome_trace, validate_chrome_trace
from repro.obs.events import EV_DIR_EVICT, EV_MISS, EV_STASH_SPILL, decode_args
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.suite import build_workload

from tests.conftest import tiny_config


def _run(config, trace, obs_config=None):
    system = build_system(config)
    observer = attach(system, obs_config) if obs_config is not None else None
    result = Simulator(system, observer=observer).run(trace)
    return system, observer, result


@pytest.fixture(scope="module")
def small_trace():
    return build_workload("mix", 16, 600, seed=3)


@pytest.fixture(scope="module")
def pressured_config():
    return make_config(kind=DirectoryKind.STASH, ratio=0.125)


class TestNullProbe:
    def test_all_off_config_attaches_nothing(self):
        system = build_system(tiny_config())
        assert attach(system, ObsConfig()) is None
        assert system.home._obs is None
        for controller in system.l1_controllers:
            assert controller._obs is None

    def test_negative_intervals_rejected(self):
        with pytest.raises(ValueError):
            ObsConfig(epoch_interval=-1)

    def test_observed_run_reports_identical_results(
        self, pressured_config, small_trace
    ):
        _, _, plain = _run(pressured_config, small_trace)
        _, observer, observed = _run(
            pressured_config,
            small_trace,
            ObsConfig(epoch_interval=128, trace_capacity=4096),
        )
        # The strongest form of "zero-cost": observability adds nothing to
        # the stats tree and perturbs no simulated outcome, even when ON.
        assert observed.stats == plain.stats
        assert observed.cycles_per_core == plain.cycles_per_core
        assert observer.ring.total > 0
        assert len(observer.sampler.epochs) > 0

    def test_detach_restores_null_probe(self, pressured_config, small_trace):
        system, observer, _ = _run(
            pressured_config, small_trace, ObsConfig(trace_capacity=256)
        )
        assert system.home._obs is not None
        observer.detach()
        assert system.home._obs is None
        assert all(c._obs is None for c in system.l1_controllers)


class TestTracing:
    def test_under_provisioned_stash_emits_spills(
        self, pressured_config, small_trace
    ):
        _, observer, _ = _run(
            pressured_config, small_trace, ObsConfig(trace_capacity=65_536)
        )
        counts = observer.ring.counts_by_kind()
        assert counts.get("miss", 0) > 0
        assert counts.get("grant", 0) == counts["miss"]
        assert counts.get("stash_spill", 0) > 0

    def test_sparse_vs_stash_divergence(self, small_trace):
        """The acceptance scenario: at 1/8x provisioning the sparse
        directory floods eviction invalidations; the stash directory
        converts them into silent spills."""
        by_kind = {}
        for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH):
            config = make_config(kind=kind, ratio=0.125)
            _, observer, _ = _run(
                config, small_trace,
                ObsConfig(epoch_interval=128, trace_capacity=65_536),
            )
            by_kind[kind] = observer
        sparse = by_kind[DirectoryKind.SPARSE]
        stash = by_kind[DirectoryKind.STASH]
        sparse_counts = sparse.ring.counts_by_kind()
        stash_counts = stash.ring.counts_by_kind()
        assert sparse_counts.get("dir_eviction", 0) > 10 * max(
            1, stash_counts.get("dir_eviction", 0)
        )
        assert stash_counts.get("stash_spill", 0) > 0
        assert sparse_counts.get("stash_spill", 0) == 0
        # And the epoch series shows the same story over time.
        key = "system.protocol.dir_eviction_inval_msgs"
        assert sum(sparse.sampler.delta_series(key)) > sum(
            stash.sampler.delta_series(key)
        )

    def test_trace_is_perfetto_valid(self, pressured_config, small_trace):
        _, observer, _ = _run(
            pressured_config, small_trace, ObsConfig(trace_capacity=4096)
        )
        assert validate_chrome_trace(chrome_trace(observer.ring)) == []

    def test_event_args_decode(self, pressured_config, small_trace):
        _, observer, _ = _run(
            pressured_config, small_trace, ObsConfig(trace_capacity=65_536)
        )
        for ts, kind, core, addr, dur, arg in observer.ring:
            fields = decode_args(kind, arg)
            assert "raw" not in fields
            if kind == EV_MISS:
                assert isinstance(fields["write"], bool)
            if kind == EV_DIR_EVICT:
                assert core == -1
            if kind == EV_STASH_SPILL:
                assert core >= 0  # stash victims are private: hider known


class TestEpochCadence:
    def test_epoch_count_matches_interval(self, pressured_config):
        trace = build_workload("mix", 16, 256, seed=3)
        total = trace.total_ops()
        interval = 512
        _, observer, _ = _run(
            pressured_config, trace, ObsConfig(epoch_interval=interval)
        )
        epochs = observer.sampler.epochs
        # Full epochs plus one final partial epoch covering the tail.
        expected = total // interval + (1 if total % interval else 0)
        assert len(epochs) == expected
        assert epochs[-1]["op"] == total
        ops = [epoch["op"] for epoch in epochs]
        assert ops == sorted(ops)

    def test_deltas_sum_to_final_stats(self, pressured_config, small_trace):
        _, observer, result = _run(
            pressured_config, small_trace, ObsConfig(epoch_interval=100)
        )
        key = "system.protocol.l1_misses"
        assert sum(observer.sampler.delta_series(key)) == result.stats[key]


class TestInvariantCadence:
    def test_observer_interval_drives_checks(self, small_trace):
        config = make_config(kind=DirectoryKind.STASH, ratio=0.25)
        system = build_system(config)
        calls = []
        original = system.check_invariants
        system.check_invariants = lambda: (calls.append(1), original())[1]
        observer = attach(system, ObsConfig(invariant_interval=200))
        Simulator(system, observer=observer).run(small_trace)
        total = small_trace.total_ops()
        # Every 200 ops, plus the unconditional end-of-run check.
        assert len(calls) == total // 200 + 1

    def test_violation_is_detected(self, small_trace):
        config = make_config(kind=DirectoryKind.STASH, ratio=0.25)
        system = build_system(config)
        system.check_invariants = lambda: (_ for _ in ()).throw(
            AssertionError("boom")
        )
        observer = attach(system, ObsConfig(invariant_interval=50))
        with pytest.raises(AssertionError):
            Simulator(system, observer=observer).run(small_trace)
