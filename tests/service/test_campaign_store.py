"""Campaign-store tests: journal round-trip, corruption tolerance, and
cache-maintenance integration (``clear_all`` / ``--cache-stats`` cover the
campaign layer)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import runner
from repro.service.manifest import CampaignManifest, ManifestError
from repro.service.store import JOURNAL_VERSION, CampaignStore

MANIFEST = CampaignManifest.from_dict(
    {"name": "store-test", "factors": {"kind": ["sparse", "stash"]}}
)


@pytest.fixture
def store(tmp_path) -> CampaignStore:
    return CampaignStore(tmp_path / "campaigns")


class TestManifestPersistence:
    def test_create_then_resume(self, store):
        assert store.create(MANIFEST) is True
        assert store.create(MANIFEST) is False  # same manifest: resume
        loaded = store.load_manifest(MANIFEST.campaign_id)
        assert loaded == MANIFEST

    def test_mismatched_manifest_under_same_id_rejected(self, store):
        store.create(MANIFEST)
        # Tamper: overwrite the stored manifest with different content.
        path = store.manifest_path(MANIFEST.campaign_id)
        other = CampaignManifest.from_dict(
            {"name": "imposter", "factors": {"kind": ["stash"]}}
        )
        path.write_text(
            json.dumps({"id": MANIFEST.campaign_id, "manifest": other.to_dict()})
        )
        with pytest.raises(ManifestError, match="different manifest"):
            store.create(MANIFEST)

    def test_load_missing_or_corrupt_returns_none(self, store):
        assert store.load_manifest("deadbeef") is None
        store.create(MANIFEST)
        store.manifest_path(MANIFEST.campaign_id).write_text("{garbage")
        assert store.load_manifest(MANIFEST.campaign_id) is None


class TestJournal:
    def test_append_and_load_round_trip(self, store):
        cid = MANIFEST.campaign_id
        store.append(cid, 0, "computed", key="k0", seconds=0.5,
                     summary={"latency": 1.0})
        store.append(cid, 2, "cache", key="k2", summary={"latency": 2.0})
        records = store.load_journal(cid)
        assert set(records) == {0, 2}
        assert records[0]["src"] == "computed"
        assert records[0]["seconds"] == 0.5
        assert records[2]["summary"] == {"latency": 2.0}
        assert store.last_skipped() == 0

    def test_append_via_persistent_handle(self, store):
        cid = MANIFEST.campaign_id
        with store.open_journal(cid) as handle:
            for index in range(3):
                store.append(cid, index, "computed", handle=handle)
        assert set(store.load_journal(cid)) == {0, 1, 2}

    def test_later_record_wins_for_same_index(self, store):
        cid = MANIFEST.campaign_id
        store.append(cid, 1, "computed", summary={"a": 1.0})
        store.append(cid, 1, "cache", summary={"a": 2.0})
        records = store.load_journal(cid)
        assert records[1]["src"] == "cache"

    def test_truncated_final_line_skipped(self, store):
        cid = MANIFEST.campaign_id
        store.append(cid, 0, "computed")
        # Simulate a crash mid-write: a torn trailing line.
        with open(store.journal_path(cid), "a") as handle:
            handle.write('{"v": 1, "i": 1, "src": "comp')
        records = store.load_journal(cid)
        assert set(records) == {0}
        assert store.last_skipped() == 1

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            '{"v": 99, "i": 0, "src": "computed", "summary": {}}',  # bad version
            '{"v": 1, "i": -1, "src": "computed", "summary": {}}',  # bad index
            '{"v": 1, "i": "x", "src": "computed", "summary": {}}',  # bad type
            '{"v": 1, "i": 0, "src": "computed", "summary": 7}',     # bad summary
            '[1, 2, 3]',
        ],
    )
    def test_malformed_records_skipped(self, store, line):
        cid = MANIFEST.campaign_id
        store.append(cid, 5, "computed")
        with open(store.journal_path(cid), "a") as handle:
            handle.write(line + "\n")
        records = store.load_journal(cid)
        assert set(records) == {5}
        assert store.last_skipped() == 1

    def test_missing_journal_is_empty(self, store):
        assert store.load_journal("deadbeef") == {}
        assert store.last_skipped() == 0


class TestMaintenance:
    def test_list_ids_and_stats(self, store):
        assert store.list_ids() == []
        assert store.stats() == {"campaigns": 0, "files": 0, "bytes": 0}
        store.create(MANIFEST)
        store.append(MANIFEST.campaign_id, 0, "computed")
        assert store.list_ids() == [MANIFEST.campaign_id]
        stats = store.stats()
        assert stats["campaigns"] == 1
        assert stats["files"] == 2  # manifest + journal
        assert stats["bytes"] > 0

    def test_clear_removes_everything(self, store):
        store.create(MANIFEST)
        store.append(MANIFEST.campaign_id, 0, "computed")
        assert store.clear() == 1
        assert store.list_ids() == []
        assert store.stats()["campaigns"] == 0


class TestRunnerIntegration:
    """The cache-maintenance satellite: ``clear_all`` and the counters
    report must cover ``.repro_cache/campaigns/``."""

    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path):
        previous = runner.configure()
        runner.configure(cache_dir=str(tmp_path / "cache"))
        yield
        runner.configure(**previous)

    def test_clear_all_clears_campaign_store(self):
        store = CampaignStore(runner.campaigns_root())
        store.create(MANIFEST)
        store.append(MANIFEST.campaign_id, 0, "computed")
        assert store.stats()["campaigns"] == 1
        runner.clear_all()
        assert store.stats()["campaigns"] == 0

    def test_experiments_clear_cache_clears_campaigns(self):
        from repro.analysis.experiments import clear_cache

        store = CampaignStore(runner.campaigns_root())
        store.create(MANIFEST)
        assert store.stats()["campaigns"] == 1
        clear_cache()
        assert store.stats()["campaigns"] == 0

    def test_counters_summary_reports_campaigns(self):
        store = CampaignStore(runner.campaigns_root())
        store.create(MANIFEST)
        store.append(MANIFEST.campaign_id, 0, "computed")
        summary = runner.counters_summary()
        assert "campaigns      1 journaled" in summary

    def test_campaigns_root_follows_cache_dir(self, tmp_path):
        assert runner.campaigns_root() == tmp_path / "cache" / "campaigns"
        assert (
            runner.campaigns_root("/elsewhere")
            == runner.campaigns_root("/elsewhere")
        )
