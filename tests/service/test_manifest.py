"""Campaign-manifest tests: round-trip, strict rejection, deterministic
expansion order, and the grid-size ceiling."""

from __future__ import annotations

import json

import pytest

from repro.common.config import DirectoryKind
from repro.service.manifest import (
    ABSOLUTE_MAX_POINTS,
    FACTOR_DEFAULTS,
    FACTOR_ORDER,
    CampaignManifest,
    ManifestError,
    parse_manifest,
)

TINY = {
    "name": "tiny",
    "factors": {
        "kind": ["sparse", "stash"],
        "ratio": [0.5, 0.125],
        "workload": ["mix"],
        "ops": [200],
        "cores": [16],
    },
}


def manifest(**overrides) -> CampaignManifest:
    data = dict(TINY)
    data.update(overrides)
    return CampaignManifest.from_dict(data)


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        m = manifest()
        assert CampaignManifest.from_dict(m.to_dict()) == m

    def test_round_trip_with_all_fields(self):
        m = manifest(
            replicates=2,
            seed_stride=500,
            config={"moesi": True, "dir_ways": 4},
            observe={"epoch": 128},
        )
        again = CampaignManifest.from_dict(m.to_dict())
        assert again == m
        assert again.campaign_id == m.campaign_id

    def test_canonical_json_is_stable(self):
        assert manifest().canonical_json() == manifest().canonical_json()
        # Key order in the input dict must not matter.
        reordered = {k: TINY[k] for k in reversed(list(TINY))}
        assert (
            CampaignManifest.from_dict(reordered).campaign_id
            == manifest().campaign_id
        )

    def test_campaign_id_differs_with_content(self):
        assert manifest().campaign_id != manifest(name="other").campaign_id

    def test_defaults_fill_missing_factors(self):
        m = CampaignManifest.from_dict({"factors": {"kind": ["stash"]}})
        for factor in FACTOR_ORDER:
            assert len(m.factors[factor]) >= 1
        assert m.factors["workload"] == FACTOR_DEFAULTS["workload"]

    def test_scalar_level_normalized_to_list(self):
        m = CampaignManifest.from_dict({"factors": {"kind": "stash"}})
        assert m.factors["kind"] == ("stash",)

    def test_parse_manifest_bytes(self):
        m = parse_manifest(json.dumps(TINY).encode())
        assert m == manifest()

    def test_parse_manifest_rejects_bad_json(self):
        with pytest.raises(ManifestError, match="not valid JSON"):
            parse_manifest(b"{nope")


class TestRejection:
    @pytest.mark.parametrize(
        "data,match",
        [
            ({"bogus": 1}, "unknown manifest fields"),
            ({"name": ""}, "'name'"),
            ({"name": "x" * 200}, "'name'"),
            ({"factors": {"flavor": ["mild"]}}, "unknown factors"),
            ({"factors": {"kind": ["quantum"]}}, "unknown directory kind"),
            ({"factors": {"kind": []}}, "non-empty list"),
            ({"factors": {"workload": ["nacho-like"]}}, "unknown workload"),
            ({"factors": {"cores": [17]}}, "unsupported core count"),
            ({"factors": {"cores": [True]}}, "cores levels"),
            ({"factors": {"ratio": [-1.0]}}, "ratio levels"),
            ({"factors": {"ops": [0]}}, "ops levels"),
            ({"factors": {"engine": ["warp"]}}, "unknown engine"),
            ({"factors": {"seed": ["one"]}}, "seed levels"),
            ({"replicates": 0}, "'replicates'"),
            ({"seed_stride": 0}, "'seed_stride'"),
            ({"config": {"turbo": True}}, "unknown config override"),
            ({"config": {"moesi": "yes"}}, "must be a bool"),
            ({"config": {"dir_ways": -1}}, "non-negative integer"),
            ({"config": {"sharer_format": "morse"}}, "unknown sharer_format"),
            ({"observe": {"trace": 1}}, "only the 'epoch' key"),
            ({"observe": {"epoch": -1}}, "'observe.epoch'"),
        ],
    )
    def test_invalid_manifest_raises(self, data, match):
        with pytest.raises(ManifestError, match=match):
            CampaignManifest.from_dict(data)

    def test_oversized_grid_rejected_by_limit(self):
        m = manifest(replicates=3)  # 2 x 2 x 3 = 12 points
        with pytest.raises(ManifestError, match="over the limit"):
            m.expand(max_points=10)
        assert len(m.expand(max_points=12)) == 12

    def test_absolute_ceiling_applies(self):
        m = manifest(replicates=ABSOLUTE_MAX_POINTS + 1)
        with pytest.raises(ManifestError, match="over the limit"):
            # Even an enormous caller-supplied limit is clamped.
            m.expand(max_points=ABSOLUTE_MAX_POINTS * 10)


class TestExpansion:
    def test_order_is_deterministic(self):
        first = manifest().expand()
        second = manifest().expand()
        assert [s.labels for s in first] == [s.labels for s in second]
        assert [s.index for s in first] == list(range(len(first)))

    def test_grid_size_matches_expansion(self):
        m = manifest(replicates=2)
        assert m.grid_size() == len(m.expand()) == 8

    def test_factor_order_outer_to_inner(self):
        labels = [s.labels for s in manifest().expand()]
        # kind is the outermost factor: first half sparse, second half stash.
        assert [l["kind"] for l in labels] == ["sparse"] * 2 + ["stash"] * 2
        assert [l["ratio"] for l in labels] == [0.5, 0.125, 0.5, 0.125]

    def test_points_carry_the_right_config(self):
        spec = manifest().expand()[0]
        point = spec.point
        assert point.workload == "mix"
        assert point.ops_per_core == 200
        assert point.config.num_cores == 16
        assert point.config.directory.kind is DirectoryKind.SPARSE
        assert point.config.directory.coverage_ratio == 0.5
        assert not point.observed

    def test_replicates_shift_seeds_by_stride(self):
        m = manifest(replicates=3, seed_stride=100)
        seeds = [s.labels["seed"] for s in m.expand()[:3]]
        assert seeds == [1, 101, 201]
        replicates = [s.labels["replicate"] for s in m.expand()[:3]]
        assert replicates == [0, 1, 2]

    def test_config_overrides_reach_the_config(self):
        m = manifest(config={"moesi": True, "dir_ways": 4})
        config = m.expand()[0].point.config
        assert config.directory.ways == 4

    def test_observed_campaign_builds_obs_points(self):
        m = manifest(observe={"epoch": 64})
        point = m.expand()[0].point
        assert point.observed
        assert point.obs.epoch_interval == 64

    def test_engine_factor_respected(self):
        m = CampaignManifest.from_dict(
            {"factors": {"kind": ["stash"], "engine": ["vector"]}}
        )
        assert m.expand()[0].point.engine == "vector"
