"""Metrics tests: counter/gauge/summary semantics and a strict round-trip
through the Prometheus text exposition format."""

from __future__ import annotations

import math

import pytest

from repro.service.metrics import (
    MetricsRegistry,
    parse_prometheus,
    render_gauge_dict,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("jobs_total", "Jobs", ("kind",))
        c.inc(kind="stash")
        c.inc(2.0, kind="stash")
        c.inc(kind="sparse")
        assert c.value(kind="stash") == 3.0
        assert c.value(kind="sparse") == 1.0
        assert c.value(kind="cuckoo") == 0.0

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("n", "N")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_label_mismatch_rejected(self, registry):
        c = registry.counter("n", "N", ("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(flavor="mild")
        with pytest.raises(ValueError, match="expected labels"):
            c.inc()


class TestGauge:
    def test_set(self, registry):
        g = registry.gauge("depth", "Depth")
        g.set(7)
        assert ((), 7.0) in [(items, v) for _, items, v in g.samples()]

    def test_callback_backed(self, registry):
        state = {"value": 1.5}
        g = registry.gauge_func("live", "Live", lambda: state["value"])
        assert g.samples()[0][2] == 1.5
        state["value"] = 2.5
        assert g.samples()[0][2] == 2.5

    def test_set_on_callback_gauge_rejected(self, registry):
        g = registry.gauge_func("live", "Live", lambda: 0.0)
        with pytest.raises(ValueError, match="callback-backed"):
            g.set(1.0)


class TestSummary:
    def test_quantiles_and_totals(self, registry):
        s = registry.summary("latency", "Latency")
        for value in range(1, 101):
            s.observe(float(value))
        assert s.quantile(0.5) == 50.0
        assert s.quantile(0.99) == 99.0
        rendered = {suffix: v for suffix, _, v in s.samples()}
        assert rendered["_count"] == 100.0
        assert rendered["_sum"] == sum(range(1, 101))

    def test_window_slides(self, registry):
        s = registry.summary("latency", "Latency", window=10)
        for value in range(100):
            s.observe(float(value))
        assert s.quantile(0.5) >= 90.0  # only the last 10 remain

    def test_empty_quantile_is_nan(self, registry):
        s = registry.summary("latency", "Latency")
        assert math.isnan(s.quantile(0.5))


class TestRegistry:
    def test_duplicate_name_rejected(self, registry):
        registry.counter("x", "X")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x", "X")

    def test_get(self, registry):
        c = registry.counter("x", "X")
        assert registry.get("x") is c
        assert registry.get("y") is None


class TestRenderAndParse:
    def test_round_trip(self, registry):
        c = registry.counter("points_total", "Points", ("kind", "source"))
        c.inc(3, kind="stash", source="computed")
        c.inc(1, kind="sparse", source="cache")
        registry.gauge_func("depth", "Depth", lambda: 4.0)
        s = registry.summary("lat", "Latency")
        s.observe(0.25)
        text = registry.render()
        parsed = parse_prometheus(text)
        assert parsed["points_total"][
            (("kind", "stash"), ("source", "computed"))
        ] == 3.0
        assert parsed["points_total"][
            (("kind", "sparse"), ("source", "cache"))
        ] == 1.0
        assert parsed["depth"][()] == 4.0
        assert parsed["lat_count"][()] == 1.0
        assert parsed["lat"][(("quantile", "0.5"),)] == 0.25

    def test_help_and_type_lines(self, registry):
        registry.counter("x_total", "The X help text")
        text = registry.render()
        assert "# HELP x_total The X help text" in text
        assert "# TYPE x_total counter" in text

    def test_untouched_unlabeled_metrics_render_zero(self, registry):
        registry.counter("never_total", "Never")
        registry.gauge("idle", "Idle")
        parsed = parse_prometheus(registry.render())
        assert parsed["never_total"][()] == 0.0
        assert parsed["idle"][()] == 0.0

    def test_label_escaping_round_trips(self, registry):
        c = registry.counter("esc_total", "Esc", ("name",))
        nasty = 'quo"te\\back\nnewline'
        c.inc(name=nasty)
        parsed = parse_prometheus(registry.render())
        assert parsed["esc_total"][(("name", nasty),)] == 1.0

    def test_render_gauge_dict_parses(self):
        text = render_gauge_dict(
            "obs_gauge", "Obs gauges",
            {"dir_occupancy": 504.0, "stash_bits": 122.0},
            {"campaign": "abc123"},
        )
        parsed = parse_prometheus(text)
        assert parsed["obs_gauge"][
            (("gauge", "dir_occupancy"), ("campaign", "abc123"))
        ] == 504.0
        assert parsed["obs_gauge"][
            (("gauge", "stash_bits"), ("campaign", "abc123"))
        ] == 122.0

    @pytest.mark.parametrize(
        "junk",
        [
            "metric_without_value",
            "bad{unterminated 1",
            'bad{name=unquoted} 1',
            "name with spaces 1",
            "# BOGUS comment",
            "m 1\nm{x=\"unterminated} 2",
        ],
    )
    def test_parser_rejects_junk(self, junk):
        with pytest.raises(ValueError):
            parse_prometheus(junk)

    def test_parser_accepts_inf_and_nan(self):
        parsed = parse_prometheus("m_a +Inf\nm_b NaN\n")
        assert parsed["m_a"][()] == math.inf
        assert math.isnan(parsed["m_b"][()])
