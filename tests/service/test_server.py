"""Campaign-service tests: scheduling, HTTP API, metrics and crash resume.

The resume satellite lives in :class:`TestResumeAfterKill`: a campaign is
killed after exactly K points are journaled, a fresh service instance is
pointed at the same store, and only the remaining N-K points execute.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis import runner
from repro.service import (
    CampaignManifest,
    CampaignService,
    CampaignStore,
    ServiceConfig,
    ServiceHandle,
)
from repro.service.metrics import parse_prometheus
from repro.workloads import store as trace_store

OPS = 200

TINY = {
    "name": "tiny",
    "factors": {
        "kind": ["sparse", "stash"],
        "ratio": [0.5, 0.125],
        "workload": ["blackscholes-like"],
        "ops": [OPS],
        "cores": [16],
    },
}


@pytest.fixture(autouse=True)
def fresh_state():
    previous = runner.configure()
    runner.clear_memo()
    runner.counters.reset()
    trace_store.clear_memo()
    trace_store.counters.reset()
    yield
    runner.configure(**previous)
    runner.clear_memo()
    runner.counters.reset()
    trace_store.clear_memo()
    trace_store.counters.reset()


def service_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        port=0, backend="inproc", workers=2, cache_dir=str(tmp_path / "cache")
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def manifest(**overrides) -> CampaignManifest:
    data = dict(TINY)
    data.update(overrides)
    return CampaignManifest.from_dict(data)


async def run_campaign(service: CampaignService, m: CampaignManifest):
    """Submit and await one campaign on the current loop."""
    campaign, created = await service.submit(m)
    task = service._tasks.get(campaign.id)
    if task is not None:
        await asyncio.wait_for(asyncio.shield(task), timeout=120)
    return campaign, created


class TestServiceConfig:
    def test_rejects_serial_backend(self, tmp_path):
        with pytest.raises(ValueError, match="serial"):
            ServiceConfig(backend="serial")

    def test_accepts_pool_and_inproc(self):
        assert ServiceConfig(backend="pool").backend == "pool"
        assert ServiceConfig(backend="inproc").backend == "inproc"


class TestScheduling:
    def test_campaign_completes_with_correct_results(self, tmp_path):
        async def scenario():
            service = CampaignService(service_config(tmp_path))
            try:
                campaign, created = await run_campaign(service, manifest())
                return campaign, created
            finally:
                await service.stop()

        campaign, created = asyncio.run(scenario())
        assert created is True
        assert campaign.status == "done"
        assert campaign.counts() == {
            "pending": 0, "running": 0, "done": 4, "failed": 0
        }
        assert campaign.executed == 4
        # Bit-identical to the direct sweep path.
        specs = manifest().expand()
        direct = runner.run_points(
            [s.point for s in specs], workers=1, cache_enabled=False
        )
        for index, result in enumerate(direct):
            assert campaign.summaries[index] == result.summary()

    def test_resubmit_is_idempotent(self, tmp_path):
        async def scenario():
            service = CampaignService(service_config(tmp_path))
            try:
                campaign, created = await run_campaign(service, manifest())
                again, created_again = await service.submit(manifest())
                return created, created_again, campaign is again
            finally:
                await service.stop()

        created, created_again, same = asyncio.run(scenario())
        assert created is True
        assert created_again is False
        assert same is True

    def test_cache_hits_skip_dispatch(self, tmp_path):
        """A second service over a warm result cache computes nothing."""
        config = service_config(tmp_path)

        async def first():
            service = CampaignService(config)
            try:
                campaign, _ = await run_campaign(service, manifest())
                return campaign.executed
            finally:
                await service.stop()

        executed_cold = asyncio.run(first())
        assert executed_cold == 4

        # Same cache dir, fresh memo, fresh store location for the journal
        # (a different campaign id would dodge the journal; wipe it so the
        # *result cache* is what satisfies the points).
        runner.clear_memo()
        CampaignStore(runner.campaigns_root(config.cache_dir)).clear()

        async def second():
            service = CampaignService(config)
            try:
                campaign, _ = await run_campaign(service, manifest())
                return campaign
            finally:
                await service.stop()

        campaign = asyncio.run(second())
        assert campaign.status == "done"
        assert campaign.executed == 0
        assert campaign.cache_hits == 4
        assert all(src == "cache" for src in campaign.sources)

    def test_journal_written_per_completion(self, tmp_path):
        config = service_config(tmp_path)

        async def scenario():
            service = CampaignService(config)
            try:
                campaign, _ = await run_campaign(service, manifest())
                return campaign.id
            finally:
                await service.stop()

        campaign_id = asyncio.run(scenario())
        store = CampaignStore(runner.campaigns_root(config.cache_dir))
        records = store.load_journal(campaign_id)
        assert set(records) == {0, 1, 2, 3}
        assert all(r["src"] == "computed" for r in records.values())
        assert store.load_manifest(campaign_id) == manifest()

    def test_failed_points_fail_the_campaign(self, tmp_path, monkeypatch):
        def _explode(batch, spool_dir=None, spool_enabled=True):
            raise RuntimeError("synthetic batch failure")

        monkeypatch.setattr(runner, "_run_batch", _explode)

        async def scenario():
            service = CampaignService(service_config(tmp_path))
            try:
                campaign, _ = await run_campaign(service, manifest())
                return campaign
            finally:
                await service.stop()

        campaign = asyncio.run(scenario())
        assert campaign.status == "failed"
        assert campaign.counts()["failed"] == 4
        assert all("synthetic batch failure" in (e or "") for e in campaign.errors)

    def test_observed_campaign_surfaces_gauges(self, tmp_path):
        async def scenario():
            service = CampaignService(service_config(tmp_path))
            try:
                observed = manifest(
                    factors={
                        "kind": ["stash"], "ratio": [0.125],
                        "workload": ["blackscholes-like"],
                        "ops": [OPS], "cores": [16],
                    },
                    observe={"epoch": 64},
                )
                campaign, _ = await run_campaign(service, observed)
                return campaign, service.metrics_text()
            finally:
                await service.stop()

        campaign, text = asyncio.run(scenario())
        assert campaign.status == "done"
        assert campaign.executed == 1
        parsed = parse_prometheus(text)
        obs = parsed.get("repro_obs_gauge", {})
        gauge_names = {dict(items)["gauge"] for items in obs}
        assert "dir_occupancy" in gauge_names
        assert "epoch_op" in gauge_names
        assert all(dict(items)["campaign"] == campaign.id for items in obs)


class TestResumeAfterKill:
    """Kill mid-campaign, restart on the same store, run only N-K points."""

    def test_resume_executes_only_missing_points(self, tmp_path, monkeypatch):
        config = service_config(
            tmp_path, workers=1, batch_size=1, cache_enabled=False
        )
        store = CampaignStore(runner.campaigns_root(config.cache_dir))
        m = manifest()
        campaign_id = m.campaign_id
        release = threading.Event()
        real_run_batch = runner._run_batch
        lock = threading.Lock()
        calls = []

        def _first_then_block(batch, spool_dir=None, spool_enabled=True):
            with lock:
                calls.append(len(batch))
                first = len(calls) == 1
            outputs = real_run_batch(batch, spool_dir, spool_enabled)
            if not first:
                # Second batch: computed but never handed back — exactly
                # the shape of a process dying mid-campaign.
                release.wait(timeout=60)
                raise RuntimeError("killed")
            return outputs

        monkeypatch.setattr(runner, "_run_batch", _first_then_block)

        async def phase_one():
            service = CampaignService(config)
            try:
                await service.submit(m)
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if len(store.load_journal(campaign_id)) >= 1:
                        break
                    await asyncio.sleep(0.01)
            finally:
                await service.stop()  # the "kill": cancels the campaign task
                release.set()

        asyncio.run(phase_one())
        journaled = store.load_journal(campaign_id)
        completed_before = len(journaled)
        assert 1 <= completed_before < 4, (
            f"expected a partial journal, got {completed_before} records"
        )

        # Phase two: a fresh process (fresh memo, unpatched worker) over
        # the same store.  The result cache is disabled, so the journal is
        # the only thing that can satisfy the K completed points.
        monkeypatch.setattr(runner, "_run_batch", real_run_batch)
        runner.clear_memo()

        async def phase_two():
            service = CampaignService(config)
            try:
                campaign, _ = await run_campaign(service, m)
                return campaign
            finally:
                await service.stop()

        campaign = asyncio.run(phase_two())
        assert campaign.status == "done"
        assert campaign.resumed == completed_before
        assert campaign.executed == 4 - completed_before
        assert campaign.counts()["done"] == 4
        for index in journaled:
            assert campaign.sources[index] == "journal"
        # The resumed campaign's results still match a direct sweep.
        specs = m.expand()
        direct = runner.run_points(
            [s.point for s in specs], workers=1, cache_enabled=False
        )
        for index, result in enumerate(direct):
            assert campaign.summaries[index] == result.summary()


class TestHttpApi:
    """End-to-end over a real socket (ServiceHandle + urllib)."""

    @pytest.fixture
    def handle(self, tmp_path):
        handle = ServiceHandle(service_config(tmp_path)).start()
        yield handle
        handle.stop()

    @staticmethod
    def _get(handle, path):
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{handle.port}{path}", timeout=30
            ) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    @staticmethod
    def _get_json(handle, path):
        status, raw = TestHttpApi._get(handle, path)
        return status, json.loads(raw)

    @staticmethod
    def _post_json(handle, path, payload):
        req = urllib.request.Request(
            f"http://127.0.0.1:{handle.port}{path}",
            data=json.dumps(payload).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def _wait_done(self, handle, campaign_id, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, status = self._get_json(handle, f"/campaigns/{campaign_id}")
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            time.sleep(0.05)
        raise AssertionError("campaign did not finish in time")

    def test_full_campaign_over_http(self, handle):
        status, submitted = self._post_json(handle, "/campaigns", TINY)
        assert status == 201
        assert submitted["total_points"] == 4

        final = self._wait_done(handle, submitted["id"])
        assert final["status"] == "done"
        assert final["counts"]["done"] == 4
        assert len(final["points"]) == 4
        for point in final["points"]:
            assert point["state"] == "done"
            assert point["summary"]

        # Idempotent resubmit over HTTP: 200, not 201.
        status, again = self._post_json(handle, "/campaigns", TINY)
        assert status == 200
        assert again["created_new"] is False

        # List endpoint shows it.
        status, listing = self._get_json(handle, "/campaigns")
        assert status == 200
        assert [c["id"] for c in listing["campaigns"]] == [submitted["id"]]

    def test_stream_delivers_every_completion(self, handle):
        _, submitted = self._post_json(handle, "/campaigns", TINY)
        status, raw = self._get(
            handle, f"/campaigns/{submitted['id']}/stream"
        )
        assert status == 200
        lines = [json.loads(line) for line in raw.decode().splitlines()]
        assert len(lines) == 4
        assert {line["index"] for line in lines} == {0, 1, 2, 3}
        assert all(line["state"] == "done" for line in lines)

    def test_metrics_parse_and_count(self, handle):
        _, submitted = self._post_json(handle, "/campaigns", TINY)
        self._wait_done(handle, submitted["id"])
        status, raw = self._get(handle, "/metrics")
        assert status == 200
        parsed = parse_prometheus(raw.decode())
        for family in (
            "repro_points_completed_total",
            "repro_queue_depth",
            "repro_campaigns_active",
            "repro_points_per_second",
            "repro_worker_utilization",
            "repro_workers",
            "repro_result_cache_hit_rate",
            "repro_point_latency_seconds",
            "repro_http_requests_total",
        ):
            assert family in parsed, f"missing family {family}"
        assert sum(parsed["repro_points_completed_total"].values()) == 4
        assert parsed["repro_queue_depth"][()] == 0.0

    def test_error_paths(self, handle):
        status, body = self._post_json(
            handle, "/campaigns", {"factors": {"flavor": ["mild"]}}
        )
        assert status == 400
        assert "unknown factors" in body["error"]

        status, body = self._get_json(handle, "/campaigns/feedface")
        assert status == 404

        status, _ = self._get_json(handle, "/healthz")
        assert status == 200

        status, info = self._get_json(handle, "/")
        assert status == 200
        assert info["backend"]["backend"] == "inproc"

    def test_oversized_grid_rejected_over_http(self, tmp_path):
        handle = ServiceHandle(
            service_config(tmp_path / "small", max_points=2)
        ).start()
        try:
            status, body = self._post_json(handle, "/campaigns", TINY)
            assert status == 400
            assert "over the limit" in body["error"]
        finally:
            handle.stop()


class TestCliServe:
    def test_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--workers", "2", "serve", "--port", "0", "--backend", "inproc"]
        )
        assert args.command == "serve"
        assert args.service_backend == "inproc"
        assert args.port == 0

    def test_parser_rejects_serial_service_backend(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "serial"])
