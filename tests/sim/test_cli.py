"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "mix"
        assert args.kind == "stash"
        assert args.ratio == 0.125

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "F99"])

    def test_experiment_ids_cover_design_index(self):
        for expected in ["T1", "T2", "F3", "F10", "A3", "headline"]:
            assert expected in EXPERIMENTS


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--workload", "swaptions-like", "--ops", "200",
                     "--cores", "4", "--check-invariants"])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution_time" in out
        assert "configuration" in out

    def test_run_with_dram_and_warmup(self, capsys):
        code = main(["run", "--ops", "200", "--cores", "4", "--dram",
                     "--warmup", "100"])
        assert code == 0
        assert "results" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(["sweep", "--workload", "swaptions-like", "--ops", "200",
                     "--kinds", "sparse", "stash", "--ratios", "1.0", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sparse" in out and "stash" in out

    def test_characterize(self, capsys):
        code = main(["characterize", "--workloads", "mix", "--ops", "200",
                     "--cores", "4"])
        assert code == 0
        assert "private" in capsys.readouterr().out

    def test_experiment_t2(self, capsys):
        code = main(["experiment", "T2"])
        assert code == 0
        assert "storage" in capsys.readouterr().out

    def test_gen_trace_and_replay(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        code = main(["gen-trace", "--workload", "mix", "--ops", "100",
                     "--cores", "4", str(path)])
        assert code == 0
        assert path.exists()
        code = main(["replay", str(path), "--cores", "4", "--kind", "stash",
                     "--check-invariants"])
        assert code == 0
        assert "replay" in capsys.readouterr().out

    def test_replay_missing_file_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "missing.csv"
        with pytest.raises(FileNotFoundError):
            main(["replay", str(missing), "--cores", "4"])

    def test_replay_bad_trace_returns_error(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("0,0x40\n")
        code = main(["replay", str(path), "--cores", "4"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestFuzz:
    def test_fuzz_clean_run(self, capsys):
        code = main(["fuzz", "--ops", "80", "--seeds", "2", "--kinds",
                     "stash", "sparse"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all organizations agree with ideal" in out
        assert "all invariants held" in out

    def test_fuzz_covers_all_kinds_by_default(self):
        args = build_parser().parse_args(["fuzz"])
        assert "adaptive_stash" in args.kinds and "scd" in args.kinds
        assert "in_llc" in args.kinds and "ideal" not in args.kinds

    def test_fuzz_list_faults(self, capsys):
        assert main(["fuzz", "--list-faults"]) == 0
        out = capsys.readouterr().out
        assert "drop-invalidation" in out and "stash-bit-lost" in out

    def test_fuzz_injected_fault_caught_minimized_replayed(
        self, tmp_path, capsys
    ):
        corpus = tmp_path / "failures"
        code = main([
            "fuzz", "--ops", "250", "--seeds", "2", "--kinds", "sparse",
            "--inject-fault", "drop-invalidation", "--out-dir", str(corpus),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "reproduce with:" in err
        cases = list(corpus.glob("*.trace"))
        assert cases
        # The minimized case replays to the same failure.
        replay_code = main(["fuzz", "--replay", str(cases[0])])
        out = capsys.readouterr().out
        assert replay_code == 1
        assert "reproduced:" in out

    def test_fuzz_engine_clean_run(self, capsys):
        code = main(["fuzz", "--engine", "--ops", "80", "--seeds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine-differential" in out
        assert "agree with the interpreter bit-for-bit" in out

    def test_fuzz_engine_fault_caught_minimized_replayed(
        self, tmp_path, capsys
    ):
        corpus = tmp_path / "failures"
        code = main([
            "fuzz", "--engine", "--ops", "300", "--seeds", "3",
            "--profiles", "mixed", "--inject-fault", "table-corrupt",
            "--out-dir", str(corpus),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "engine-" in err
        cases = list(corpus.glob("*.trace"))
        assert cases
        replay_code = main(["fuzz", "--replay", str(cases[0])])
        out = capsys.readouterr().out
        assert replay_code == 1
        assert "reproduced:" in out
        assert "engine-" in out

    def test_fuzz_list_faults_includes_engine_faults(self, capsys):
        assert main(["fuzz", "--list-faults"]) == 0
        out = capsys.readouterr().out
        assert "table-corrupt" in out

    def test_fuzz_seed_corpus_replays_clean(self, tmp_path, capsys):
        code = main([
            "fuzz", "--seed-corpus", "--out-dir", str(tmp_path / "failures"),
            "--seeds", "1", "--ops", "60", "--kinds", "stash",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "planted seed case" in out
        assert "seed case clean" in out


class TestSaveAndCompare:
    def test_run_save_then_compare(self, tmp_path, capsys):
        a = tmp_path / "sparse.json"
        b = tmp_path / "stash.json"
        base = ["--workload", "swaptions-like", "--ops", "150", "--cores", "4"]
        assert main(["run", *base, "--kind", "sparse", "--ratio", "1.0",
                     "--save", str(a)]) == 0
        assert main(["run", *base, "--kind", "stash", "--ratio", "0.125",
                     "--save", str(b)]) == 0
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "sparse" in out and "stash" in out
        assert "norm. time" in out

    def test_run_moesi_flag(self, capsys):
        code = main(["run", "--workload", "mix", "--ops", "150", "--cores", "4",
                     "--moesi", "--check-invariants"])
        assert code == 0


class TestReport:
    def test_report_selected_sections(self, tmp_path, capsys):
        out_path = tmp_path / "REPORT.md"
        code = main(["report", str(out_path), "--ops", "200",
                     "--sections", "T1", "T2", "headline"])
        assert code == 0
        text = out_path.read_text()
        assert "## T1" in text and "## T2" in text and "## headline" in text
        assert "Headline: normalized execution time" in text

    def test_report_section_order_matches_registry(self):
        from repro.analysis.report import REPORT_SECTIONS

        ids = [exp_id for exp_id, _, _ in REPORT_SECTIONS]
        assert ids.index("T1") < ids.index("F3") < ids.index("A1")
