"""PackedTrace: lossless conversion, address-range edges, serialization."""

from __future__ import annotations

import pytest

from repro.common.errors import TraceError
from repro.sim.trace import MAX_PACKED_ADDR, PackedTrace, Trace
from repro.workloads.suite import build_workload


def sample_trace() -> Trace:
    trace = Trace(3)
    trace.append(0, 0x1000, False)
    trace.append(0, 0x1040, True)
    trace.append(1, 0x0, True)
    trace.append(1, 0x2FC0, False)
    # core 2 deliberately left empty: round-trips must keep empty streams.
    return trace


class TestRoundTrip:
    def test_pack_unpack_is_lossless(self):
        trace = sample_trace()
        packed = PackedTrace.from_trace(trace)
        assert packed.to_trace().ops == trace.ops

    def test_encoding_is_addr_shl_1_or_write(self):
        packed = PackedTrace.from_trace(sample_trace())
        assert list(packed.streams[0]) == [(0x1000 << 1), (0x1040 << 1) | 1]
        assert list(packed.streams[1]) == [1, (0x2FC0 << 1)]

    def test_workload_trace_round_trips(self):
        trace = build_workload("mix", 8, 200, seed=5)
        packed = trace.pack()
        assert packed.to_trace().ops == trace.ops
        assert packed.total_ops() == trace.total_ops()

    def test_counts_and_bytes(self):
        packed = PackedTrace.from_trace(sample_trace())
        assert packed.num_cores == 3
        assert [packed.core_ops(c) for c in range(3)] == [2, 2, 0]
        assert packed.total_ops() == 4
        assert packed.nbytes() == 32

    def test_equality(self):
        a = PackedTrace.from_trace(sample_trace())
        b = PackedTrace.from_trace(sample_trace())
        assert a == b
        b.append(2, 0x40, True)
        assert a != b
        assert a.__eq__(object()) is NotImplemented

    def test_from_file_matches_trace_from_file(self, tmp_path):
        path = tmp_path / "t.csv"
        sample_trace().to_file(path)
        via_trace = Trace.from_file(path, num_cores=3).pack()
        direct = PackedTrace.from_file(path, num_cores=3)
        assert direct == via_trace
        assert direct.to_trace().ops == Trace.from_file(path, num_cores=3).ops


class TestAddressRange:
    def test_max_packed_addr_round_trips(self):
        packed = PackedTrace(1)
        packed.append(0, MAX_PACKED_ADDR, True)
        packed.append(0, MAX_PACKED_ADDR, False)
        assert packed.to_trace().ops[0] == [
            (MAX_PACKED_ADDR, True),
            (MAX_PACKED_ADDR, False),
        ]

    def test_append_beyond_max_raises(self):
        packed = PackedTrace(1)
        with pytest.raises(TraceError, match="packable range"):
            packed.append(0, MAX_PACKED_ADDR + 1, False)

    def test_from_trace_beyond_max_raises(self):
        trace = Trace(2)
        trace.append(1, MAX_PACKED_ADDR + 1, True)
        with pytest.raises(TraceError, match="packable range"):
            PackedTrace.from_trace(trace)

    def test_negative_address_rejected(self):
        packed = PackedTrace(1)
        with pytest.raises(TraceError, match="packable range"):
            packed.append(0, -1, False)


class TestValidation:
    def test_needs_a_core(self):
        with pytest.raises(TraceError, match="at least one core"):
            PackedTrace(0)

    def test_core_bounds(self):
        packed = PackedTrace(2)
        with pytest.raises(TraceError, match="outside"):
            packed.append(2, 0x40, False)

    def test_stream_count_must_match_cores(self):
        from array import array

        with pytest.raises(TraceError, match="streams"):
            PackedTrace(3, [array("Q"), array("Q")])


class TestStreamBytes:
    def test_bytes_round_trip(self):
        packed = PackedTrace.from_trace(sample_trace())
        rebuilt = PackedTrace.from_stream_bytes(packed.stream_bytes())
        assert rebuilt == packed

    def test_little_endian_layout(self):
        packed = PackedTrace(1)
        packed.append(0, 0x2, True)  # word 0x5
        assert packed.stream_bytes() == [b"\x05" + b"\x00" * 7]

    def test_ragged_payload_rejected(self):
        with pytest.raises(TraceError, match="8-byte"):
            PackedTrace.from_stream_bytes([b"\x00" * 7])

    def test_empty_blob_list_rejected(self):
        with pytest.raises(TraceError, match="at least one core"):
            PackedTrace.from_stream_bytes([])
