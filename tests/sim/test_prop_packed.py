"""Property tests: PackedTrace packing boundaries and epoch slicing.

Two contracts the vector engine leans on:

1. Packing is lossless across the whole encodable range — bit 63 is the
   address MSB, bit 0 the read/write flag, and ``MAX_PACKED_ADDR`` is a
   hard wall (beyond it packing must *raise*, never truncate).
2. Epoch batching is invisible — the engine may slice a stream at any
   boundary and the simulation result does not change by a single bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.common.config import (
    CacheConfig,
    DirectoryKind,
    NoCConfig,
    SystemConfig,
)
from repro.common.errors import TraceError
from repro.sim.trace import MAX_PACKED_ADDR, PackedTrace, Trace
from repro.sim.vector import VectorEngine

#: Addresses that exercise every boundary of the 63-bit encoding.
BOUNDARY_ADDRS = (
    0,
    1,
    MAX_PACKED_ADDR,
    MAX_PACKED_ADDR - 1,
    1 << 62,
    (1 << 62) - 1,
)

addrs = st.one_of(
    st.sampled_from(BOUNDARY_ADDRS), st.integers(0, MAX_PACKED_ADDR)
)


@st.composite
def traces(draw, max_ops=60, addr_strategy=addrs):
    cores = draw(st.integers(1, 4))
    trace = Trace(cores)
    for core, addr, is_write in draw(
        st.lists(
            st.tuples(st.integers(0, cores - 1), addr_strategy, st.booleans()),
            max_size=max_ops,
        )
    ):
        trace.append(core, addr, is_write)
    return trace


class TestPackingBoundaries:
    @settings(max_examples=100, deadline=None)
    @given(trace=traces())
    def test_pack_unpack_roundtrip(self, trace):
        packed = trace.pack()
        assert packed.total_ops() == trace.total_ops()
        restored = packed.to_trace()
        assert restored.ops == trace.ops
        assert restored.pack() == packed

    @settings(max_examples=100, deadline=None)
    @given(trace=traces())
    def test_stream_bytes_roundtrip(self, trace):
        packed = trace.pack()
        rebuilt = PackedTrace.from_stream_bytes(packed.stream_bytes())
        assert rebuilt == packed

    @settings(max_examples=50, deadline=None)
    @given(
        addr=st.integers(MAX_PACKED_ADDR + 1, 1 << 70),
        is_write=st.booleans(),
    )
    def test_append_rejects_oversized_address(self, addr, is_write):
        packed = PackedTrace(1)
        with pytest.raises(TraceError):
            packed.append(0, addr, is_write)
        assert packed.total_ops() == 0

    @settings(max_examples=50, deadline=None)
    @given(addr=st.integers(MAX_PACKED_ADDR + 1, 1 << 70))
    def test_from_trace_rejects_oversized_address(self, addr):
        trace = Trace(2)
        trace.append(0, 0x40, False)
        trace.append(1, addr, True)
        with pytest.raises(TraceError):
            PackedTrace.from_trace(trace)

    @settings(max_examples=100, deadline=None)
    @given(addr=addrs, is_write=st.booleans())
    def test_word_encoding_is_addr_shifted_plus_flag(self, addr, is_write):
        packed = PackedTrace(1)
        packed.append(0, addr, is_write)
        (word,) = packed.streams[0]
        assert word >> 1 == addr
        assert bool(word & 1) == is_write


def _vector_config() -> SystemConfig:
    # The fuzz differ's tiny geometry: dense conflicts in very few ops.
    return SystemConfig(
        num_cores=4,
        l1=CacheConfig(sets=2, ways=2),
        llc=CacheConfig(sets=8, ways=2),
        noc=NoCConfig(mesh_width=2, mesh_height=2),
    ).with_directory(kind=DirectoryKind.STASH, entries_override=8, ways=2)


#: Small block-aligned working set so tiny programs still conflict.
sim_addrs = st.integers(0, 47).map(lambda block: block * 64)


class TestEpochSlicing:
    @settings(max_examples=40, deadline=None)
    @given(
        trace=traces(max_ops=120, addr_strategy=sim_addrs),
        epoch_ops=st.integers(1, 130),
    )
    def test_any_epoch_size_is_bit_identical(self, trace, epoch_ops):
        config = _vector_config()
        packed = trace.pack()
        reference = VectorEngine(config).run(packed)
        sliced = VectorEngine(config, epoch_ops=epoch_ops).run(packed)
        assert sliced == reference

    @settings(max_examples=20, deadline=None)
    @given(trace=traces(max_ops=80, addr_strategy=sim_addrs))
    def test_epoch_one_matches_interpreter(self, trace):
        from repro.sim.simulator import run_trace

        config = _vector_config()
        interp = run_trace(config, trace)
        vector = VectorEngine(config, epoch_ops=1).run(trace.pack())
        assert vector == interp
