"""Property tests: trace file round-trips over random traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Trace


@st.composite
def traces(draw):
    cores = draw(st.integers(1, 4))
    trace = Trace(cores)
    for core, addr, is_write in draw(
        st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 2**40), st.booleans()
            ),
            max_size=60,
        )
    ):
        trace.append(core % cores, addr, is_write)
    return trace


@settings(max_examples=50, deadline=None)
@given(trace=traces())
def test_trace_file_roundtrip_property(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "t.csv"
    trace.to_file(path)
    loaded = Trace.from_file(path, trace.num_cores)
    assert loaded.ops == trace.ops
    assert loaded.total_ops() == trace.total_ops()
    assert loaded.write_fraction() == trace.write_fraction()
