"""Unit tests for the result container's derived metrics."""

from repro.sim.results import SimulationResult
from tests.conftest import tiny_config


def make_result(stats=None, cycles=(100, 200)):
    return SimulationResult(
        config=tiny_config(),
        cycles_per_core=list(cycles),
        stats=stats or {},
    )


class TestDerivedMetrics:
    def test_execution_time_is_max(self):
        assert make_result(cycles=(10, 50, 30)).execution_time == 50

    def test_empty_cycles(self):
        assert make_result(cycles=()).execution_time == 0

    def test_avg_latency(self):
        result = make_result(
            {"system.protocol.accesses": 10, "system.protocol.latency_total": 250}
        )
        assert result.avg_access_latency == 25.0

    def test_miss_rate(self):
        result = make_result(
            {"system.protocol.accesses": 100, "system.protocol.l1_misses": 7}
        )
        assert result.l1_miss_rate == 0.07

    def test_per_kilo_metrics(self):
        result = make_result(
            {
                "system.protocol.accesses": 2000,
                "system.protocol.dir_induced_invalidations": 10,
                "system.protocol.coverage_misses": 4,
            }
        )
        assert result.dir_induced_invals_per_kilo == 5.0
        assert result.coverage_misses_per_kilo == 2.0

    def test_discovery_metrics(self):
        result = make_result(
            {
                "system.protocol.accesses": 1000,
                "system.discovery.broadcasts": 20,
                "system.discovery.false_discoveries": 5,
            }
        )
        assert result.discovery_per_kilo == 20.0
        assert result.false_discovery_rate == 0.25

    def test_zero_division_guards(self):
        result = make_result({})
        assert result.avg_access_latency == 0.0
        assert result.false_discovery_rate == 0.0

    def test_traffic_accessors(self):
        result = make_result(
            {
                "system.noc.flit_hops.total": 500,
                "system.noc.flit_hops.discovery_probe": 30,
                "system.noc.msgs.total": 100,
            }
        )
        assert result.total_flit_hops == 500
        assert result.traffic_of("discovery_probe") == 30
        assert result.total_messages == 100


class TestNormalization:
    def test_normalized_time(self):
        fast = make_result(cycles=(100,))
        slow = make_result(cycles=(150,))
        assert slow.normalized_time(fast) == 1.5

    def test_normalized_against_zero_baseline(self):
        assert make_result(cycles=(100,)).normalized_time(make_result(cycles=())) == 1.0

    def test_normalized_traffic(self):
        a = make_result({"system.noc.flit_hops.total": 200})
        b = make_result({"system.noc.flit_hops.total": 100})
        assert a.normalized_traffic(b) == 2.0

    def test_summary_keys(self):
        summary = make_result().summary()
        assert "execution_time" in summary
        assert "false_discovery_rate" in summary
