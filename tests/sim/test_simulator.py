"""Unit tests for the trace-driven simulator loop."""

import pytest

from repro.common.config import DirectoryKind
from repro.common.errors import TraceError
from repro.sim.simulator import Simulator, run_trace
from repro.sim.system import build_system
from repro.sim.trace import Trace
from tests.conftest import tiny_config


def make_trace(num_cores=4, ops_per_core=10, stride=64):
    trace = Trace(num_cores)
    for core in range(num_cores):
        for i in range(ops_per_core):
            trace.append(core, (core * 1000 + i) * stride, i % 3 == 0)
    return trace


class TestRun:
    def test_processes_all_ops(self):
        result = run_trace(tiny_config(), make_trace())
        assert result.total_accesses == 40

    def test_clocks_advance_per_core(self):
        result = run_trace(tiny_config(), make_trace())
        assert all(c > 0 for c in result.cycles_per_core)
        assert result.execution_time == max(result.cycles_per_core)

    def test_trace_with_fewer_cores_than_system(self):
        trace = make_trace(num_cores=2)
        result = run_trace(tiny_config(num_cores=4), trace)
        assert result.total_accesses == 20

    def test_trace_with_more_cores_rejected(self):
        trace = make_trace(num_cores=8)
        with pytest.raises(TraceError):
            run_trace(tiny_config(num_cores=4), trace)

    def test_empty_trace(self):
        result = run_trace(tiny_config(), Trace(4))
        assert result.total_accesses == 0
        assert result.execution_time == 0

    def test_uneven_core_streams(self):
        trace = Trace(4)
        for i in range(20):
            trace.append(0, i * 64, False)
        trace.append(1, 0x9000, True)
        result = run_trace(tiny_config(), trace)
        assert result.total_accesses == 21


class TestInterleave:
    def test_timestamp_order_interleaves_cores(self):
        """All cores make progress; no core finishes before others start."""
        system = build_system(tiny_config(check_invariants=False))
        order = []
        original = system.access

        def spy(core, addr, is_write, now=0.0):
            order.append(core)
            return original(core, addr, is_write, now)

        system.access = spy
        Simulator(system).run(make_trace(num_cores=4, ops_per_core=5))
        # The first 4 issued ops must come from 4 different cores.
        assert set(order[:4]) == {0, 1, 2, 3}

    def test_invariant_interval_runs_checks(self):
        system = build_system(tiny_config(check_invariants=True))
        calls = []
        original = system.check_invariants
        system.check_invariants = lambda: calls.append(1) or original()
        Simulator(system, invariant_interval=8).run(make_trace(ops_per_core=10))
        assert len(calls) >= 2  # periodic + final

    def test_effective_tracking_sampled(self):
        system = build_system(tiny_config(check_invariants=False))
        result = Simulator(system, sample_interval=10).run(
            make_trace(num_cores=4, ops_per_core=10)
        )
        assert len(result.effective_tracking_samples) == 4


class TestDeterminism:
    def test_same_config_same_result(self):
        trace = make_trace()
        a = run_trace(tiny_config(DirectoryKind.STASH, check_invariants=False), trace)
        b = run_trace(tiny_config(DirectoryKind.STASH, check_invariants=False), trace)
        assert a.execution_time == b.execution_time
        assert a.stats == b.stats


class TestWarmup:
    def test_warmup_discards_stats(self):
        trace = make_trace(num_cores=4, ops_per_core=10)
        cold = run_trace(tiny_config(check_invariants=False), trace)
        system = build_system(tiny_config(check_invariants=False))
        warm = Simulator(system, warmup_ops=20).run(trace)
        # Only post-warmup accesses are counted.
        assert warm.total_accesses == cold.total_accesses - 20

    def test_warmup_preserves_cache_state(self):
        """Post-warmup miss rates are lower than cold-start miss rates for a
        trace that revisits its working set."""
        trace = Trace(1)
        for _ in range(3):
            for block in range(8):
                trace.append(0, block * 64, False)
        system = build_system(tiny_config(num_cores=1, l1_sets=4, l1_ways=2,
                                          check_invariants=False))
        warm = Simulator(system, warmup_ops=8).run(trace)
        assert warm.l1_miss_rate == 0.0  # all 16 measured accesses hit

    def test_warmup_time_measured_from_region_start(self):
        trace = make_trace(num_cores=2, ops_per_core=20)
        full = run_trace(tiny_config(check_invariants=False), trace)
        system = build_system(tiny_config(check_invariants=False))
        warm = Simulator(system, warmup_ops=10).run(trace)
        assert warm.execution_time < full.execution_time

    def test_negative_warmup_rejected(self):
        system = build_system(tiny_config(check_invariants=False))
        with pytest.raises(TraceError):
            Simulator(system, warmup_ops=-1)

    def test_zero_warmup_is_default_behaviour(self):
        trace = make_trace()
        a = run_trace(tiny_config(check_invariants=False), trace)
        system = build_system(tiny_config(check_invariants=False))
        b = Simulator(system, warmup_ops=0).run(trace)
        assert a.total_accesses == b.total_accesses
        assert a.execution_time == b.execution_time
