"""Unit tests for the system builder wiring."""

from repro.common.config import DirectoryKind
from repro.core.adaptive import AdaptiveStashDirectory
from repro.core.stash_directory import StashDirectory
from repro.directory.cuckoo import CuckooDirectory
from repro.directory.hierarchical import ScdDirectory
from repro.directory.ideal import IdealDirectory
from repro.directory.sparse import SparseDirectory
from repro.sim.system import build_system
from tests.conftest import tiny_config


class TestBuildSystem:
    def test_l1_per_core(self):
        system = build_system(tiny_config(num_cores=4))
        assert len(system.l1s) == 4
        assert [l1.core_id for l1 in system.l1s] == [0, 1, 2, 3]

    def test_llc_banked_per_core(self):
        system = build_system(tiny_config(num_cores=4))
        assert system.llc.num_banks == 4

    def test_directory_kind_dispatch(self):
        kinds = {
            DirectoryKind.SPARSE: SparseDirectory,
            DirectoryKind.CUCKOO: CuckooDirectory,
            DirectoryKind.SCD: ScdDirectory,
            DirectoryKind.IDEAL: IdealDirectory,
            DirectoryKind.IN_LLC: IdealDirectory,
            DirectoryKind.STASH: StashDirectory,
            DirectoryKind.ADAPTIVE_STASH: AdaptiveStashDirectory,
        }
        for kind, cls in kinds.items():
            system = build_system(tiny_config(kind))
            assert type(system.directory) is cls

    def test_directory_sized_by_ratio(self):
        # 4 cores x 8 L1 blocks = 32; ratio 0.5 -> 16 entries.
        system = build_system(tiny_config(ratio=0.5))
        assert system.directory.capacity == 16

    def test_stats_tree_rooted(self):
        system = build_system(tiny_config())
        system.access(0, 0x100, is_write=False)
        flat = system.flat_stats()
        assert any(key.startswith("system.protocol") for key in flat)
        assert any(key.startswith("system.noc") for key in flat)

    def test_stash_flag(self):
        assert build_system(tiny_config(DirectoryKind.STASH)).is_stash
        assert not build_system(tiny_config(DirectoryKind.SPARSE)).is_stash

    def test_effective_tracking_counts_entries_and_stash_bits(self):
        system = build_system(tiny_config(DirectoryKind.STASH))
        system.access(0, 0x100, is_write=False)
        assert system.effective_tracking() == 1
