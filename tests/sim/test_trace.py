"""Unit tests for traces and trace file I/O."""

import pytest

from repro.common.errors import TraceError
from repro.sim.trace import Trace, TraceRecord


class TestConstruction:
    def test_append_and_counts(self):
        trace = Trace(2)
        trace.append(0, 0x100, False)
        trace.append(1, 0x140, True)
        trace.append(0, 0x180, False)
        assert trace.total_ops() == 3
        assert trace.core_ops(0) == 2
        assert trace.core_ops(1) == 1

    def test_core_out_of_range(self):
        with pytest.raises(TraceError):
            Trace(2).append(2, 0, False)

    def test_negative_address(self):
        with pytest.raises(TraceError):
            Trace(1).append(0, -1, False)

    def test_zero_cores_rejected(self):
        with pytest.raises(TraceError):
            Trace(0)

    def test_from_records(self):
        records = [TraceRecord(0, 0x100, True), TraceRecord(1, 0x200, False)]
        trace = Trace.from_records(2, records)
        assert trace.ops[0] == [(0x100, True)]
        assert trace.ops[1] == [(0x200, False)]


class TestMetrics:
    def test_write_fraction(self):
        trace = Trace(1)
        trace.append(0, 0, True)
        trace.append(0, 64, False)
        assert trace.write_fraction() == 0.5

    def test_write_fraction_empty(self):
        assert Trace(1).write_fraction() == 0.0

    def test_unique_blocks(self):
        trace = Trace(1)
        trace.append(0, 0, False)
        trace.append(0, 63, False)   # same 64B block
        trace.append(0, 64, False)   # next block
        assert trace.unique_blocks(64) == 2

    def test_iter_records(self):
        trace = Trace(2)
        trace.append(1, 0x40, True)
        records = list(trace.iter_records())
        assert records == [TraceRecord(1, 0x40, True)]

    def test_write_fraction_multi_core(self):
        trace = Trace(3)
        for addr in range(0, 64 * 6, 64):
            trace.append(0, addr, True)    # 6 writes
        trace.append(1, 0, False)
        trace.append(2, 64, False)         # 2 reads
        assert trace.write_fraction() == 6 / 8

    def test_unique_blocks_across_cores(self):
        trace = Trace(2)
        trace.append(0, 0, False)
        trace.append(1, 32, True)     # same 64B block as core 0's access
        trace.append(1, 4096, False)
        assert trace.unique_blocks(64) == 2
        assert trace.unique_blocks(4096) == 2  # 0/32 and 4096 split at 4KB too


class TestFileIO:
    def test_roundtrip(self, tmp_path):
        trace = Trace(2)
        trace.append(0, 0x100, False)
        trace.append(1, 0x2000, True)
        path = tmp_path / "t.csv"
        trace.to_file(path)
        loaded = Trace.from_file(path, 2)
        assert loaded.ops == trace.ops

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# header\n\n0,0x40,R\n")
        trace = Trace.from_file(path, 1)
        assert trace.ops[0] == [(0x40, False)]

    def test_decimal_addresses_accepted(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,128,W\n")
        assert Trace.from_file(path, 1).ops[0] == [(128, True)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,0x40\n")
        with pytest.raises(TraceError):
            Trace.from_file(path, 1)

    def test_bad_rw_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,0x40,X\n")
        with pytest.raises(TraceError):
            Trace.from_file(path, 1)

    def test_bad_int_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("zero,0x40,R\n")
        with pytest.raises(TraceError):
            Trace.from_file(path, 1)

    def test_roundtrip_preserves_metrics(self, tmp_path):
        trace = Trace(4)
        for core in range(4):
            for i in range(8):
                trace.append(core, (core * 8 + i) * 64, i % 2 == 0)
        path = tmp_path / "t.csv"
        trace.to_file(path)
        loaded = Trace.from_file(path, 4)
        assert loaded.ops == trace.ops
        assert loaded.write_fraction() == trace.write_fraction()
        assert loaded.unique_blocks(64) == trace.unique_blocks(64)

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,0x40,R\n0,0x80\n")
        with pytest.raises(TraceError, match=":2:"):
            Trace.from_file(path, 1)

    def test_too_many_fields_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,0x40,R,extra\n")
        with pytest.raises(TraceError):
            Trace.from_file(path, 1)

    def test_core_out_of_range_in_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("3,0x40,R\n")
        with pytest.raises(TraceError):
            Trace.from_file(path, 2)

    def test_negative_address_in_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,-64,R\n")
        with pytest.raises(TraceError):
            Trace.from_file(path, 1)


class TestFlatPrograms:
    """Single-stream global-order encoding used by the fuzz corpus."""

    def test_round_trip(self):
        from repro.sim.trace import pack_flat_program, unpack_flat_program

        program = [(0, 0x10, True), (3, 0x0, False), (1, 0xABC, True)]
        packed = pack_flat_program(program)
        assert packed.num_cores == 1
        assert packed.total_ops() == 3
        assert unpack_flat_program(packed) == program

    def test_preserves_global_order(self):
        from repro.sim.trace import pack_flat_program, unpack_flat_program

        program = [(core, 7, False) for core in (2, 0, 1, 0, 2)]
        assert [op[0] for op in unpack_flat_program(pack_flat_program(program))] \
            == [2, 0, 1, 0, 2]

    def test_limits_enforced(self):
        from repro.common.errors import TraceError
        from repro.sim.trace import (
            MAX_FLAT_ADDR,
            MAX_FLAT_CORE,
            pack_flat_program,
        )

        pack_flat_program([(MAX_FLAT_CORE, MAX_FLAT_ADDR, True)])
        with pytest.raises(TraceError):
            pack_flat_program([(MAX_FLAT_CORE + 1, 0, False)])
        with pytest.raises(TraceError):
            pack_flat_program([(0, MAX_FLAT_ADDR + 1, False)])
        with pytest.raises(TraceError):
            pack_flat_program([(-1, 0, False)])

    def test_multi_stream_rejected(self):
        from repro.common.errors import TraceError
        from repro.sim.trace import PackedTrace, unpack_flat_program

        with pytest.raises(TraceError):
            unpack_flat_program(PackedTrace(2))

    def test_survives_spool_round_trip(self, tmp_path):
        from repro.sim.trace import pack_flat_program, unpack_flat_program
        from repro.workloads.store import TraceStore

        program = [(1, 0x40, True), (0, 0x40, False)]
        spool = TraceStore(tmp_path)
        spool.store("f" * 64, {"fuzz": {"kind": "stash"}}, pack_flat_program(program))
        header, packed = spool.load_entry("f" * 64)
        assert header["fuzz"] == {"kind": "stash"}
        assert unpack_flat_program(packed) == program
