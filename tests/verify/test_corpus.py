"""Failure corpus: serialization round trips, seeds, corruption handling."""

import pytest

from repro.common.errors import TraceError
from repro.common.mesi import CoherenceProtocol
from repro.common.config import SharerFormat
from repro.verify import (
    FailureCase,
    RunOptions,
    case_key,
    load_case,
    repro_command,
    run_differential,
    save_case,
    seed_corpus,
)
from repro.verify.corpus import SEED_CATEGORY


def sample_case(**overrides):
    fields = dict(
        program=[(0, 0x10, True), (1, 0x10, False)],
        kind="stash",
        category="invariant",
        detail="made up for the test",
        options=RunOptions(
            num_cores=6,
            sharer_format=SharerFormat.COARSE_VECTOR,
            protocol=CoherenceProtocol.MOESI,
        ),
        profile="group_alias",
        fault="drop-invalidation",
    )
    fields.update(overrides)
    return FailureCase(**fields)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        case = sample_case()
        path = save_case(case, tmp_path)
        assert path.exists()
        loaded = load_case(path)
        assert loaded.program == case.program
        assert loaded.kind == case.kind
        assert loaded.category == case.category
        assert loaded.detail == case.detail
        assert loaded.options == case.options
        assert loaded.profile == case.profile
        assert loaded.fault == case.fault

    def test_key_is_content_addressed(self):
        a = sample_case()
        b = sample_case()
        assert case_key(a) == case_key(b)
        assert case_key(a) != case_key(sample_case(kind="sparse"))
        assert case_key(a) != case_key(
            sample_case(program=[(0, 0x10, True)])
        )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError):
            load_case(tmp_path / ("0" * 64 + ".trace"))

    def test_corrupt_file_raises_and_discards(self, tmp_path):
        path = save_case(sample_case(), tmp_path)
        path.write_bytes(b"garbage")
        with pytest.raises(TraceError):
            load_case(path)
        assert not path.exists()

    def test_plain_trace_entry_rejected(self, tmp_path):
        from repro.sim.trace import pack_flat_program
        from repro.workloads.store import TraceStore

        spool = TraceStore(tmp_path)
        spool.store("a" * 64, {"workload": "mix"}, pack_flat_program([(0, 1, False)]))
        with pytest.raises(TraceError, match="not a fuzz case"):
            load_case(tmp_path / ("a" * 64 + ".trace"))

    def test_repro_command_names_file(self, tmp_path):
        path = save_case(sample_case(), tmp_path)
        command = repro_command(path)
        assert "repro fuzz --replay" in command
        assert str(path) in command


class TestSeedCorpus:
    def test_seed_cases_replay_clean(self, tmp_path):
        paths = seed_corpus(tmp_path)
        assert paths
        for path in paths:
            case = load_case(path)
            assert case.category == SEED_CATEGORY
            from repro.common.config import DirectoryKind

            divergences = run_differential(
                case.program,
                kinds=[DirectoryKind(case.kind)],
                options=case.options,
            )
            assert divergences == []

    def test_seed_corpus_is_idempotent(self, tmp_path):
        first = seed_corpus(tmp_path)
        second = seed_corpus(tmp_path)
        assert first == second
        assert len(set(first)) == len(first)
