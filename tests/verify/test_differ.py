"""Differential engine: clean agreement, fault detection, stat sanity."""

import pytest

from repro.common.config import DirectoryKind, SharerFormat
from repro.common.mesi import CoherenceProtocol
from repro.common.rng import DeterministicRng
from repro.verify import (
    DEFAULT_FUZZ_KINDS,
    FAULTS,
    RunOptions,
    check_stat_sanity,
    execute_program,
    generate_program,
    make_fuzz_config,
    run_differential,
)


def program_for(profile, options, ops=150, seed=1):
    return generate_program(
        profile, options.num_cores, ops, DeterministicRng(seed)
    )


class TestCleanAgreement:
    def test_all_kinds_agree_with_ideal(self):
        options = RunOptions()
        program = program_for("mixed", options)
        assert run_differential(program, options=options) == []

    def test_moesi_all_kinds_agree(self):
        options = RunOptions(protocol=CoherenceProtocol.MOESI)
        program = program_for("stash_race", options)
        assert run_differential(program, options=options) == []

    def test_six_cores_coarse_group_four(self):
        """Satellite end-to-end: non-multiple core/group fuzzing is clean."""
        options = RunOptions(
            num_cores=6,
            sharer_format=SharerFormat.COARSE_VECTOR,
            coarse_group=4,
        )
        program = program_for("group_alias", options)
        assert run_differential(program, options=options) == []

    def test_limited_pointer_overflow_clean(self):
        options = RunOptions(
            sharer_format=SharerFormat.LIMITED_POINTER,
            limited_pointers=2,
            protocol=CoherenceProtocol.MOESI,
        )
        program = program_for("pointer_overflow", options)
        assert run_differential(program, options=options) == []


class TestExecution:
    def test_versions_recorded_per_op(self):
        options = RunOptions()
        program = [(0, 1, True), (1, 1, False), (0, 2, False)]
        result = execute_program(
            program, make_fuzz_config(DirectoryKind.IDEAL, options)
        )
        assert result.ok
        assert len(result.versions) == 3
        assert result.versions[0] == 1  # first write mints version 1
        assert result.versions[1] == 1  # reader observes it
        assert result.final_versions == {1: 1}

    def test_stat_sanity_on_clean_run(self):
        options = RunOptions()
        program = program_for("eviction_storm", options, ops=120)
        for kind in DEFAULT_FUZZ_KINDS:
            result = execute_program(
                program, make_fuzz_config(kind, options), check_every=0
            )
            assert result.ok, result.error_detail
            assert check_stat_sanity(result, len(program)) is None

    def test_stat_sanity_catches_broken_identity(self):
        options = RunOptions()
        result = execute_program(
            [(0, 1, True)], make_fuzz_config(DirectoryKind.SPARSE, options)
        )
        result.stats["system.protocol.accesses"] += 1
        assert "identity broken" in check_stat_sanity(result, 1)

    def test_out_of_range_core_is_crash_not_raise(self):
        options = RunOptions(num_cores=4)
        result = execute_program(
            [(7, 1, True)], make_fuzz_config(DirectoryKind.SPARSE, options)
        )
        assert not result.ok
        assert result.error_category == "crash"


class TestFaultDetection:
    """Every registry fault must be caught by some profile/parameterization
    (these are the acceptance cases for the harness's bug-finding power)."""

    def hunt(self, fault_name, profile, options, kinds, seeds=range(1, 10)):
        fault = FAULTS[fault_name]
        for seed in seeds:
            program = generate_program(
                profile, options.num_cores, 300, DeterministicRng(seed)
            )
            divergences = run_differential(
                program, kinds=kinds, options=options, fault=fault
            )
            if divergences:
                return divergences[0]
        return None

    def test_drop_invalidation_caught(self):
        divergence = self.hunt(
            "drop-invalidation", "eviction_storm", RunOptions(),
            [DirectoryKind.SPARSE],
        )
        assert divergence is not None
        assert divergence.category in ("invariant", "value")

    def test_stash_bit_lost_caught(self):
        divergence = self.hunt(
            "stash-bit-lost", "stash_race", RunOptions(),
            [DirectoryKind.STASH],
        )
        assert divergence is not None
        assert divergence.kind == "stash"

    def test_pointer_resurrect_caught(self):
        divergence = self.hunt(
            "pointer-resurrect", "pointer_overflow",
            RunOptions(
                sharer_format=SharerFormat.LIMITED_POINTER,
                limited_pointers=2,
                protocol=CoherenceProtocol.MOESI,
            ),
            [DirectoryKind.SPARSE],
        )
        assert divergence is not None

    def test_coarse_unclamped_caught(self):
        divergence = self.hunt(
            "coarse-unclamped", "group_alias",
            RunOptions(
                num_cores=6,
                sharer_format=SharerFormat.COARSE_VECTOR,
                coarse_group=4,
            ),
            [DirectoryKind.SPARSE],
        )
        assert divergence is not None
        assert divergence.category == "crash"

    def test_fault_kinds_scopes_injection(self):
        options = RunOptions()
        program = program_for("eviction_storm", options, ops=200, seed=1)
        scoped = run_differential(
            program,
            kinds=[DirectoryKind.SPARSE, DirectoryKind.CUCKOO],
            options=options,
            fault=FAULTS["drop-invalidation"],
            fault_kinds=[DirectoryKind.SPARSE],
        )
        assert all(d.kind == "sparse" for d in scoped)


class TestOptionsRoundTrip:
    def test_to_from_meta(self):
        options = RunOptions(
            num_cores=6,
            sharer_format=SharerFormat.COARSE_VECTOR,
            protocol=CoherenceProtocol.MOESI,
            clean_eviction_notification=True,
            discovery_filter_slots=8,
            seed=17,
        )
        assert RunOptions.from_meta(options.to_meta()) == options
