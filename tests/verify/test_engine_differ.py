"""Engine differential: interpreter vs vector engine, bit-for-bit."""

import pytest

from repro.coherence.tables import l1_tables, validate_l1_tables
from repro.common.config import DirectoryKind, SharerFormat
from repro.common.errors import ProtocolError
from repro.common.mesi import CoherenceProtocol
from repro.common.rng import DeterministicRng
from repro.verify import (
    ENGINE_FAULTS,
    ENGINE_KINDS,
    RunOptions,
    diff_engine_results,
    execute_program,
    execute_program_vector,
    generate_program,
    make_fuzz_config,
    run_engine_differential,
)

#: Two ops that drive core 0's line through EXCLUSIVE into a silent
#: write upgrade — the cell the table-corrupt fault flips.
E_WRITE_PROGRAM = [(0, 1, False), (0, 1, True)]


def program_for(profile, options, ops=150, seed=1):
    return generate_program(
        profile, options.num_cores, ops, DeterministicRng(seed)
    )


class TestCleanAgreement:
    def test_engines_agree_on_mixed_program(self):
        options = RunOptions()
        program = program_for("mixed", options)
        assert run_engine_differential(program, options=options) == []

    def test_engines_agree_under_moesi(self):
        options = RunOptions(protocol=CoherenceProtocol.MOESI)
        program = program_for("stash_race", options)
        assert run_engine_differential(program, options=options) == []

    def test_engines_agree_six_cores_coarse(self):
        options = RunOptions(
            num_cores=6,
            sharer_format=SharerFormat.COARSE_VECTOR,
            coarse_group=4,
        )
        program = program_for("group_alias", options)
        assert run_engine_differential(program, options=options) == []

    def test_engines_agree_limited_pointer_overflow(self):
        options = RunOptions(
            sharer_format=SharerFormat.LIMITED_POINTER,
            limited_pointers=2,
            protocol=CoherenceProtocol.MOESI,
        )
        program = program_for("pointer_overflow", options)
        assert run_engine_differential(program, options=options) == []

    def test_unsupported_options_skip_silently(self):
        # Discovery filters have no flat view: nothing to compare, no
        # spurious divergence.
        options = RunOptions(discovery_filter_slots=8)
        program = program_for("mixed", options, ops=40)
        assert run_engine_differential(program, options=options) == []


class TestVectorExecution:
    def test_capture_matches_interpreter_exactly(self):
        options = RunOptions()
        program = program_for("set_conflict", options, ops=200)
        for kind in ENGINE_KINDS:
            config = make_fuzz_config(kind, options)
            interp = execute_program(program, config)
            vector = execute_program_vector(program, config)
            assert interp.ok and vector.ok
            assert vector.versions == interp.versions
            assert vector.final_versions == interp.final_versions
            assert vector.stats == interp.stats

    def test_out_of_range_core_is_crash_not_raise(self):
        options = RunOptions(num_cores=4)
        result = execute_program_vector(
            [(7, 1, True)], make_fuzz_config(DirectoryKind.SPARSE, options)
        )
        assert not result.ok
        assert result.error_category == "crash"


class TestFaultDetection:
    def test_table_corrupt_caught_on_every_kind(self):
        divergences = run_engine_differential(
            E_WRITE_PROGRAM,
            options=RunOptions(),
            fault=ENGINE_FAULTS["table-corrupt"],
        )
        assert {d.kind for d in divergences} == {k.value for k in ENGINE_KINDS}
        for divergence in divergences:
            assert divergence.category == "engine-value"
            assert divergence.op_index == 1  # the write that lost its mint

    def test_table_corrupt_caught_by_generated_program(self):
        # The harness finds the fault from fuzz programs too, not only
        # the hand-built repro.
        options = RunOptions(seed=2)
        program = program_for("stash_race", options, ops=400, seed=2)
        divergences = run_engine_differential(
            program, options=options, fault=ENGINE_FAULTS["table-corrupt"]
        )
        assert divergences
        assert all(d.category.startswith("engine-") for d in divergences)

    def test_corrupted_table_fails_validation_too(self):
        # Independent second line of defense: the analytic cross-check
        # rejects the same corruption the differ catches dynamically.
        corrupted = ENGINE_FAULTS["table-corrupt"].inject(
            l1_tables(CoherenceProtocol.MESI)
        )
        with pytest.raises(ProtocolError):
            validate_l1_tables(corrupted)

    def test_stats_only_divergence_detected(self):
        options = RunOptions()
        config = make_fuzz_config(DirectoryKind.SPARSE, options)
        interp = execute_program(E_WRITE_PROGRAM, config)
        vector = execute_program_vector(E_WRITE_PROGRAM, config)
        vector.stats = dict(vector.stats)
        vector.stats["system.protocol.latency_total"] += 1.0
        divergence = diff_engine_results(interp, vector, len(E_WRITE_PROGRAM))
        assert divergence is not None
        assert divergence.category == "engine-stats"
        assert "latency_total" in divergence.detail

    def test_signature_disjoint_from_organization_differ(self):
        divergences = run_engine_differential(
            E_WRITE_PROGRAM,
            kinds=[DirectoryKind.STASH],
            options=RunOptions(),
            fault=ENGINE_FAULTS["table-corrupt"],
        )
        (divergence,) = divergences
        assert divergence.signature == ("stash", "engine-value")


class TestParallelSpeculationAxis:
    """The parallel axis runs speculation on and off for every program."""

    def test_clean_program_agrees_with_speculation(self):
        from repro.verify import run_parallel_differential

        options = RunOptions()
        program = program_for("stash_race", options, ops=300)
        assert run_parallel_differential(program, options=options) == []

    def test_undo_corrupt_caught_only_by_speculative_runs(self):
        from repro.verify import run_parallel_differential

        options = RunOptions()
        program = program_for("stash_race", options, ops=300)
        fault = ENGINE_FAULTS["undo-corrupt"]
        divergences = run_parallel_differential(
            program, options=options, fault=fault
        )
        assert divergences, "undo-log corruption must be detected"
        assert all(d.category.startswith("parallel-") for d in divergences)
        assert all("speculate=on" in d.detail for d in divergences)

    def test_undo_corrupt_inject_leaves_tables_clean(self):
        tables = l1_tables(CoherenceProtocol.MESI)
        assert ENGINE_FAULTS["undo-corrupt"].inject(tables) == tables
