"""Adversarial program generator: determinism, validity, bias."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.verify.generator import PROFILES, SET_CONFLICT_STRIDE, generate_program


class TestDeterminism:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_same_seed_same_program(self, profile):
        a = generate_program(profile, 4, 200, DeterministicRng(9))
        b = generate_program(profile, 4, 200, DeterministicRng(9))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_program("mixed", 4, 200, DeterministicRng(1))
        b = generate_program("mixed", 4, 200, DeterministicRng(2))
        assert a != b


class TestValidity:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("num_cores", [1, 4, 6])
    def test_ops_well_formed(self, profile, num_cores):
        program = generate_program(profile, num_cores, 150, DeterministicRng(3))
        assert len(program) == 150
        for core, block, is_write in program:
            assert 0 <= core < num_cores
            assert block >= 0
            assert isinstance(is_write, bool)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            generate_program("nope", 4, 10, DeterministicRng(1))

    def test_zero_ops(self):
        assert generate_program("mixed", 4, 0, DeterministicRng(1)) == []


class TestBias:
    def test_set_conflict_blocks_alias_one_set(self):
        program = generate_program("set_conflict", 4, 300, DeterministicRng(5))
        assert all(block % SET_CONFLICT_STRIDE == 0 for _, block, _ in program)
        assert len({block for _, block, _ in program}) > 1

    def test_pointer_overflow_gathers_many_sharers(self):
        program = generate_program("pointer_overflow", 6, 300, DeterministicRng(5))
        # Some block must be read by more than any small pointer budget.
        readers = {}
        for core, block, is_write in program:
            if not is_write:
                readers.setdefault(block, set()).add(core)
        assert max(len(cores) for cores in readers.values()) >= 4

    def test_stash_race_touches_foreign_private_blocks(self):
        program = generate_program("stash_race", 4, 400, DeterministicRng(7))
        private = {48 + core: core for core in range(4)}
        foreign = [
            (core, block)
            for core, block, _ in program
            if block in private and private[block] != core
        ]
        assert foreign  # cross-core discovery pressure exists

    def test_eviction_storm_has_streaming_sweeps(self):
        program = generate_program("eviction_storm", 4, 400, DeterministicRng(11))
        assert len({block for _, block, _ in program}) >= 24
