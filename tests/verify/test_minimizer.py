"""Delta-debugging minimizer: synthetic and end-to-end shrinks."""

from repro.common.config import DirectoryKind
from repro.common.rng import DeterministicRng
from repro.verify import FAULTS, RunOptions, generate_program, minimize, run_differential


class TestSynthetic:
    def test_reduces_to_exact_failing_pair(self):
        needle_a = (0, 100, True)
        needle_b = (1, 100, False)
        program = [(core % 4, block, False) for core, block in enumerate(range(60))]
        program[13] = needle_a
        program[41] = needle_b

        def fails(candidate):
            return needle_a in candidate and needle_b in candidate

        minimal = minimize(program, fails)
        assert sorted(minimal) == sorted([needle_a, needle_b])

    def test_order_preserved(self):
        program = [(0, i, False) for i in range(20)] + [(1, 5, True), (2, 6, True)]

        def fails(candidate):
            try:
                return candidate.index((1, 5, True)) < candidate.index((2, 6, True))
            except ValueError:
                return False

        minimal = minimize(program, fails)
        assert minimal == [(1, 5, True), (2, 6, True)]

    def test_non_failing_input_returned_unchanged(self):
        program = [(0, 1, False)] * 5
        assert minimize(program, lambda candidate: False) == program

    def test_budget_caps_checks(self):
        calls = []

        def fails(candidate):
            calls.append(1)
            return True

        minimize([(0, i, False) for i in range(64)], fails, max_checks=10)
        assert len(calls) <= 10

    def test_single_op_core(self):
        needle = (2, 9, True)
        program = [(0, i, False) for i in range(30)]
        program.insert(11, needle)
        minimal = minimize(program, lambda candidate: needle in candidate)
        assert minimal == [needle]


class TestEndToEnd:
    def test_injected_fault_minimizes_small(self):
        """Acceptance: a caught fault shrinks to <= 32 ops and still fails."""
        options = RunOptions()
        fault = FAULTS["drop-invalidation"]
        kinds = [DirectoryKind.SPARSE]
        program = generate_program("eviction_storm", 4, 300, DeterministicRng(1))
        divergences = run_differential(
            program, kinds=kinds, options=options, fault=fault
        )
        assert divergences
        signature = divergences[0].signature

        def fails(candidate):
            again = run_differential(
                candidate, kinds=kinds, options=options, fault=fault
            )
            return any(d.signature == signature for d in again)

        minimal = minimize(program, fails)
        assert len(minimal) <= 32
        assert fails(minimal)
