"""Tests for the Tardis-aware differential axis.

The Tardis backend legally serves bounded-stale reads, so it gets its own
differ (:func:`repro.verify.differ.diff_tardis_results`).  These tests pin
the contract from both sides: correct runs produce no divergences, and
each way of breaking the contract — future reads, phantom versions,
non-monotone reads, beyond-lease staleness, write mismatches — is caught
with the right category.  The ``ts-rollover`` fault closes the loop
end-to-end: inject, catch, minimize, replay.
"""

import pytest

from repro.common.config import DirectoryKind
from repro.common.rng import DeterministicRng
from repro.verify import (
    FAULTS,
    RunOptions,
    generate_program,
    run_differential,
)
from repro.verify.differ import (
    ExecutionResult,
    diff_tardis_results,
    execute_program,
    make_fuzz_config,
)

TARDIS = DirectoryKind.TARDIS


class TestCleanRuns:
    @pytest.mark.parametrize("profile", ["mixed", "eviction_storm"])
    def test_tardis_agrees_with_ideal(self, profile):
        program = generate_program(profile, 4, 400, DeterministicRng(11))
        assert run_differential(program, kinds=[TARDIS]) == []

    def test_tardis_agrees_under_moesi_option_cycling(self):
        # The fuzz driver cycles protocol=MOESI on odd seeds; tardis
        # ignores the knob but must still run clean under it.
        from repro.common.mesi import CoherenceProtocol

        program = generate_program("stash_race", 4, 300, DeterministicRng(5))
        options = RunOptions(protocol=CoherenceProtocol.MOESI)
        assert run_differential(program, kinds=[TARDIS], options=options) == []


def _capture(program, versions, final=None):
    result = ExecutionResult(kind=TARDIS)
    result.versions = list(versions)
    result.final_versions = dict(final or {})
    return result


def _reference(program, versions, final=None):
    result = ExecutionResult(kind=DirectoryKind.IDEAL)
    result.versions = list(versions)
    result.final_versions = dict(final or {})
    return result


class TestContract:
    # program: core 0 writes block 1 twice, core 1 reads it in between.
    PROGRAM = [(0, 1, True), (1, 1, False), (0, 1, True), (1, 1, False)]
    REF = [1, 1, 2, 2]
    FINAL = {1: 2}

    def _diff(self, got, lease=16, final=None):
        reference = self._reference()
        candidate = _capture(self.PROGRAM, got, final=final or self.FINAL)
        return diff_tardis_results(
            self.PROGRAM, reference, candidate, len(self.PROGRAM), lease=lease
        )

    def _reference(self):
        return _reference(self.PROGRAM, self.REF, final=self.FINAL)

    def test_exact_match_passes(self):
        divergence = self._diff([1, 1, 2, 2])
        # Only the stats identity can complain on a hand-built capture.
        assert divergence is None or divergence.category == "stats"

    def test_stale_read_within_lease_is_legal(self):
        # Op 3 observes version 1, superseded at op 2: staleness 1 < 16.
        divergence = self._diff([1, 1, 2, 1])
        assert divergence is None or divergence.category == "stats"

    def test_stale_read_beyond_lease_flagged(self):
        divergence = self._diff([1, 1, 2, 1], lease=1)
        assert divergence is not None
        assert divergence.category == "tardis-stale"
        assert divergence.op_index == 3

    def test_future_read_flagged(self):
        divergence = self._diff([1, 1, 2, 3])
        assert divergence is not None and divergence.category == "tardis-value"

    def test_phantom_version_flagged(self):
        # Version 7 was never committed for block 1 — not in the history.
        reference = _reference(self.PROGRAM, [1, 1, 9, 9], final={1: 9})
        candidate = _capture(self.PROGRAM, [1, 1, 9, 7], final={1: 9})
        divergence = diff_tardis_results(
            self.PROGRAM, reference, candidate, 4, lease=16
        )
        assert divergence is not None and divergence.category == "tardis-value"

    def test_write_mismatch_flagged(self):
        divergence = self._diff([1, 1, 5, 2])
        assert divergence is not None and divergence.category == "tardis-write"
        assert divergence.op_index == 2

    def test_non_monotone_read_flagged(self):
        program = [(0, 1, True), (0, 1, True), (1, 1, False), (1, 1, False)]
        reference = _reference(program, [1, 2, 2, 2], final={1: 2})
        candidate = _capture(program, [1, 2, 2, 1], final={1: 2})
        divergence = diff_tardis_results(program, reference, candidate, 4, lease=16)
        assert divergence is not None and divergence.category == "tardis-value"
        assert "non-monotone" in divergence.detail

    def test_final_state_mismatch_flagged(self):
        divergence = self._diff([1, 1, 2, 2], final={1: 1})
        assert divergence is not None and divergence.category == "final-state"

    def test_crash_passes_through(self):
        candidate = _capture(self.PROGRAM, [])
        candidate.error_category = "invariant"
        candidate.error_detail = "boom"
        candidate.error_op = 2
        divergence = diff_tardis_results(
            self.PROGRAM, self._reference(), candidate, 4, lease=16
        )
        assert divergence is not None and divergence.category == "invariant"


class TestRolloverFault:
    def test_rollover_caught_as_stale_read(self):
        program = generate_program("stash_race", 4, 2000, DeterministicRng(2))
        divergences = run_differential(
            program, kinds=[TARDIS], fault=FAULTS["ts-rollover"]
        )
        assert divergences, "rollover fault escaped the differential harness"
        assert {d.category for d in divergences} <= {
            "tardis-stale",
            "tardis-value",
            "invariant",
        }
        assert any(d.category == "tardis-stale" for d in divergences)

    def test_rollover_noops_on_conventional_backends(self):
        program = generate_program("mixed", 4, 300, DeterministicRng(3))
        divergences = run_differential(
            program,
            kinds=[DirectoryKind.SPARSE],
            fault=FAULTS["ts-rollover"],
        )
        assert divergences == []

    def test_minimized_case_still_fails(self):
        from repro.verify import minimize

        program = generate_program("stash_race", 4, 2000, DeterministicRng(2))
        options = RunOptions()
        fault = FAULTS["ts-rollover"]
        divergences = run_differential(
            program, kinds=[TARDIS], fault=fault, options=options
        )
        signature = divergences[0].signature

        def still_fails(candidate):
            found = run_differential(
                candidate, kinds=[TARDIS], fault=fault, options=options
            )
            return any(d.signature == signature for d in found)

        small = minimize(program, still_fails)
        assert len(small) < len(program)
        assert still_fails(small)


class TestOptionsRoundTrip:
    def test_tardis_lease_survives_meta(self):
        options = RunOptions(tardis_lease=7)
        assert RunOptions.from_meta(options.to_meta()).tardis_lease == 7

    def test_legacy_meta_defaults_lease(self):
        meta = RunOptions().to_meta()
        del meta["tardis_lease"]
        assert RunOptions.from_meta(meta).tardis_lease == 16

    def test_fuzz_config_carries_lease(self):
        config = make_fuzz_config(TARDIS, RunOptions(tardis_lease=7))
        assert config.directory.tardis_lease == 7

    def test_smaller_lease_tightens_the_bound(self):
        # The same replay judged under its real lease passes, and under a
        # 1-op lease fails: the differ's bound tracks the config.
        program = generate_program("stash_race", 4, 600, DeterministicRng(4))
        options = RunOptions(tardis_lease=16)
        reference = execute_program(
            program,
            make_fuzz_config(DirectoryKind.IDEAL, options),
            check_every=options.check_every,
        )
        candidate = execute_program(
            program,
            make_fuzz_config(TARDIS, options),
            check_every=options.check_every,
        )
        assert (
            diff_tardis_results(
                program, reference, candidate, len(program), lease=16
            )
            is None
        )
        strict = diff_tardis_results(
            program, reference, candidate, len(program), lease=1
        )
        assert strict is not None and strict.category == "tardis-stale"
