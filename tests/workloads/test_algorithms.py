"""Property tests for the algorithm-derived trace generators.

These generators model real algorithms (graph clustering, tiled matmul,
a prime sieve, union-find), so their sharing structure is *emergent*
rather than dialed in — the tests pin the properties the characterization
relies on: determinism, exact op budgets, region disjointness at scale,
and the headline access-mix of each algorithm.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.workloads.algorithms import (
    _odd_primes,
    graph_clustering,
    prime_sieve,
    tiled_matmul,
    union_find,
)
from repro.workloads.characterize import profile_trace
from repro.workloads.patterns import REGION_SPAN
from repro.workloads.suite import ALGORITHM_WORKLOADS, build_workload

GENERATORS = [graph_clustering, tiled_matmul, prime_sieve, union_find]


def rng(seed=3):
    return DeterministicRng(seed)


def region_slot(addr: int) -> int:
    """Which REGION_SPAN slot a byte address falls in (64 B blocks).

    Slots < num_cores are per-core private regions; slot num_cores + r is
    shared region r.
    """
    return (addr >> 6) // REGION_SPAN


class TestDeterminism:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_same_seed_same_trace(self, generator):
        a = generator(8, 200, rng())
        b = generator(8, 200, rng())
        assert a.ops == b.ops

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_different_seeds_differ(self, generator):
        a = generator(8, 200, rng(1))
        b = generator(8, 200, rng(2))
        assert a.ops != b.ops


class TestOpBudget:
    @pytest.mark.parametrize("generator", GENERATORS)
    @pytest.mark.parametrize("cores", [1, 4, 16])
    def test_exact_op_count(self, generator, cores):
        trace = generator(cores, 157, rng())
        for core in range(cores):
            assert trace.core_ops(core) == 157


class TestRegionDisjointness:
    @pytest.mark.parametrize("generator", GENERATORS)
    @pytest.mark.parametrize("cores", [16, 128, 1024])
    def test_private_regions_never_cross(self, generator, cores):
        # Region slots below num_cores are private; a core must never
        # touch another core's private slot, at any scale the bank-
        # parallel engine sweeps.
        ops = 64 if cores >= 128 else 200
        trace = generator(cores, ops, rng())
        for core in range(cores):
            for addr, _ in trace.ops[core]:
                slot = region_slot(addr)
                assert slot >= cores or slot == core


class TestGraphClustering:
    def test_frontier_reads_and_private_majority(self):
        trace = graph_clustering(16, 800, rng())
        frontier_writes = [
            w
            for core in range(16)
            for a, w in trace.ops[core]
            if region_slot(a) == 16 and w  # shared region 0
        ]
        assert not frontier_writes  # the frontier is read-only
        profile = profile_trace(trace, 64)
        # Private accumulators dominate the block population while the
        # frontier supplies a genuinely widely-shared tail.
        assert 0.5 < profile.private_block_fraction < 0.95
        assert profile.degree_fraction(16) > 0.0

    def test_rejects_overcommitted_fracs(self):
        with pytest.raises(ConfigError):
            graph_clustering(4, 100, rng(), frontier_frac=0.7, label_frac=0.5)


class TestTiledMatmul:
    def test_barrier_line_touched_by_every_core(self):
        trace = tiled_matmul(8, 400, rng())
        cores_on_barrier = {
            core
            for core in range(8)
            for a, _ in trace.ops[core]
            if region_slot(a) == 8 + 1  # shared region 1
        }
        assert cores_on_barrier == set(range(8))

    def test_degree_two_tile_handoffs_dominate(self):
        profile = profile_trace(tiled_matmul(16, 800, rng()), 64)
        assert profile.degree_fraction(2) > 0.4

    def test_rejects_short_phase(self):
        with pytest.raises(ConfigError):
            tiled_matmul(4, 100, rng(), phase_len=1)


class TestPrimeSieve:
    def test_write_dominated(self):
        trace = prime_sieve(16, 800, rng())
        assert trace.write_fraction() > 0.7

    def test_bitmap_accesses_are_all_writes(self):
        trace = prime_sieve(8, 400, rng())
        for core in range(8):
            for a, w in trace.ops[core]:
                if region_slot(a) == 8:  # shared region 0
                    assert w

    def test_bitmap_widely_shared(self):
        profile = profile_trace(prime_sieve(16, 800, rng()), 64)
        assert profile.degree_fraction(16) > 0.0

    def test_rejects_tiny_bitmap(self):
        with pytest.raises(ConfigError):
            prime_sieve(4, 100, rng(), bitmap_blocks=1)


class TestUnionFind:
    def test_mixed_private_and_shared(self):
        profile = profile_trace(union_find(16, 800, rng()), 64)
        assert 0.0 < profile.private_block_fraction < 1.0
        # Hot roots migrate across every core.
        assert profile.degree_fraction(16) > 0.0

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigError):
            union_find(4, 100, rng(), max_depth=0)
        with pytest.raises(ConfigError):
            union_find(4, 100, rng(), node_blocks=2, max_depth=6)


class TestHelpers:
    def test_odd_primes(self):
        assert _odd_primes(6) == [3, 5, 7, 11, 13, 17]

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_non_power_of_two_block_rejected(self, generator):
        with pytest.raises(ConfigError):
            generator(4, 16, rng(), block_bytes=48)


class TestSuiteIntegration:
    @pytest.mark.parametrize("name", ALGORITHM_WORKLOADS)
    def test_registered_and_buildable(self, name):
        trace = build_workload(name, 4, 100, seed=2)
        assert trace.total_ops() == 400
