"""Unit tests for trace characterization."""

from repro.sim.trace import Trace
from repro.workloads.characterize import histogram_buckets, profile_trace


def make_trace():
    trace = Trace(4)
    # Block 0: private to core 0 (two accesses, one write).
    trace.append(0, 0, True)
    trace.append(0, 32, False)
    # Block 1: shared by cores 0 and 1.
    trace.append(0, 64, False)
    trace.append(1, 64, False)
    # Block 2: shared by all four cores.
    for core in range(4):
        trace.append(core, 128, False)
    return trace


class TestProfile:
    def test_unique_and_private_counts(self):
        profile = profile_trace(make_trace(), 64)
        assert profile.unique_blocks == 3
        assert profile.private_blocks == 1
        assert profile.private_block_fraction == 1 / 3

    def test_histogram(self):
        profile = profile_trace(make_trace(), 64)
        assert profile.sharing_histogram == {1: 1, 2: 1, 4: 1}
        assert profile.degree_fraction(2) == 1 / 3
        assert profile.degree_fraction(3) == 0.0

    def test_write_fraction(self):
        profile = profile_trace(make_trace(), 64)
        assert profile.write_fraction == 1 / 8

    def test_private_access_fraction(self):
        profile = profile_trace(make_trace(), 64)
        assert profile.private_access_fraction == 2 / 8

    def test_empty_trace(self):
        profile = profile_trace(Trace(2), 64)
        assert profile.unique_blocks == 0
        assert profile.private_block_fraction == 0.0
        assert profile.write_fraction == 0.0


class TestBuckets:
    def test_buckets_sum_to_one(self):
        profile = profile_trace(make_trace(), 64)
        buckets = histogram_buckets(profile, 4)
        assert abs(sum(buckets) - 1.0) < 1e-9

    def test_bucket_layout(self):
        profile = profile_trace(make_trace(), 64)
        deg1, deg2, deg34, deg58, deg9plus = histogram_buckets(profile, 4)
        assert deg1 == 1 / 3
        assert deg2 == 1 / 3
        assert deg34 == 1 / 3
        assert deg58 == 0.0

    def test_small_core_counts_keep_buckets_normalized(self):
        # With num_cores < 9 the deg>8 bucket's range (9, num_cores) is
        # empty and the deg=5-8 range may be partial; every degree that
        # actually occurs must still land in exactly one bucket.
        for cores in (2, 4, 6, 8):
            trace = Trace(cores)
            for core in range(cores):
                trace.append(core, 0, False)       # degree = cores
                trace.append(core, (core + 1) << 6, False)  # degree 1
            profile = profile_trace(trace, 64)
            buckets = histogram_buckets(profile, cores)
            assert abs(sum(buckets) - 1.0) < 1e-9
            assert buckets[0] > 0.0  # the private blocks
            if cores < 9:
                assert buckets[4] == 0.0  # deg>8 impossible
