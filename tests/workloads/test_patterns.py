"""Unit tests for the sharing-pattern generators."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.workloads.characterize import profile_trace
from repro.workloads.patterns import (
    migratory,
    private_working_set,
    producer_consumer,
    shared_read_only,
    streaming,
    uniform_mix,
)

CORES = 4
OPS = 400


def rng():
    return DeterministicRng(3)


class TestPrivateWorkingSet:
    def test_fully_private(self):
        trace = private_working_set(CORES, OPS, rng(), ws_blocks=32)
        profile = profile_trace(trace, 64)
        assert profile.private_block_fraction == 1.0

    def test_ops_count(self):
        trace = private_working_set(CORES, OPS, rng())
        assert trace.total_ops() == CORES * OPS

    def test_working_set_bounded(self):
        trace = private_working_set(1, OPS, rng(), ws_blocks=16)
        assert trace.unique_blocks(64) <= 16

    def test_write_fraction_respected(self):
        trace = private_working_set(CORES, 2000, rng(), write_frac=0.5)
        assert 0.4 < trace.write_fraction() < 0.6

    def test_rejects_bad_write_frac(self):
        with pytest.raises(ConfigError):
            private_working_set(CORES, OPS, rng(), write_frac=1.5)


class TestSharedReadOnly:
    def test_shared_region_is_shared(self):
        trace = shared_read_only(CORES, OPS, rng(), shared_frac=0.6)
        profile = profile_trace(trace, 64)
        assert profile.private_block_fraction < 1.0
        # Some blocks must be touched by every core.
        assert profile.sharing_histogram.get(CORES, 0) > 0

    def test_shared_accesses_are_reads(self):
        trace = shared_read_only(CORES, OPS, rng(), shared_frac=1.0)
        assert trace.write_fraction() == 0.0


class TestProducerConsumer:
    def test_pairs_share_buffers(self):
        trace = producer_consumer(CORES, OPS, rng(), comm_frac=1.0, buffer_blocks=8)
        profile = profile_trace(trace, 64)
        # All traffic hits per-pair buffers: sharing degree exactly 2.
        assert profile.degree_fraction(2) == 1.0

    def test_producer_writes_consumer_reads(self):
        trace = producer_consumer(2, OPS, rng(), comm_frac=1.0, return_frac=0.0)
        assert all(w for _, w in trace.ops[0])
        assert not any(w for _, w in trace.ops[1])

    def test_return_buffer_reverses_roles(self):
        # On the return buffer the "consumer" core writes and the
        # "producer" core reads — both directions of the hand-off exist.
        trace = producer_consumer(2, OPS, rng(), comm_frac=1.0, return_frac=1.0)
        assert not any(w for _, w in trace.ops[0])
        assert all(w for _, w in trace.ops[1])

    def test_forward_and_return_buffers_disjoint(self):
        fwd = producer_consumer(2, OPS, rng(), comm_frac=1.0, return_frac=0.0)
        ret = producer_consumer(2, OPS, rng(), comm_frac=1.0, return_frac=1.0)
        fwd_blocks = {a >> 6 for core in range(2) for a, _ in fwd.ops[core]}
        ret_blocks = {a >> 6 for core in range(2) for a, _ in ret.ops[core]}
        assert not (fwd_blocks & ret_blocks)

    def test_rejects_bad_return_frac(self):
        with pytest.raises(ConfigError):
            producer_consumer(CORES, OPS, rng(), return_frac=1.5)


class TestMigratory:
    def test_migratory_blocks_widely_touched(self):
        trace = migratory(CORES, OPS, rng(), migratory_frac=0.9, migratory_blocks=8)
        profile = profile_trace(trace, 64)
        assert profile.sharing_histogram.get(CORES, 0) > 0

    def test_burst_contains_reads_and_writes(self):
        trace = migratory(1, 200, rng(), migratory_frac=1.0, burst=8)
        writes = trace.write_fraction()
        assert 0.3 < writes < 0.7

    def test_ops_count_exact(self):
        trace = migratory(CORES, 123, rng())
        for core in range(CORES):
            assert trace.core_ops(core) == 123

    def test_burst_opens_with_read_then_alternates(self):
        # Regression: the burst loop used the global op index for its
        # read/write parity, so bursts starting on an odd index opened
        # with a write and the intended read-modify-write shape (and any
        # fixed write fraction) drifted with burst alignment.  Parity is
        # now burst-local: positions 0, 2, 4... read; 1, 3, 5... write.
        trace = migratory(1, 200, rng(), migratory_frac=1.0, burst=4)
        ops = trace.ops[0]
        for start in range(0, 200, 4):
            chunk = ops[start:start + 4]
            assert [w for _, w in chunk] == [False, True, False, True]
            assert len({a for a, _ in chunk}) == 1  # one block per burst

    def test_exact_write_fraction_with_even_burst(self):
        trace = migratory(CORES, 400, rng(), migratory_frac=1.0, burst=8)
        assert trace.write_fraction() == 0.5


class TestBlockShiftValidation:
    def test_non_power_of_two_block_rejected_everywhere(self):
        # Regression: the shift was computed as bit_length() - 1, which
        # silently floor-rounded non-power-of-two block sizes (e.g. 48 ->
        # shift 5) and aliased distinct blocks; it is now log2_exact.
        generators = [
            private_working_set,
            shared_read_only,
            producer_consumer,
            migratory,
            streaming,
            uniform_mix,
        ]
        for generator in generators:
            with pytest.raises(ConfigError):
                generator(CORES, 16, rng(), block_bytes=48)

    def test_power_of_two_blocks_accepted(self):
        for block_bytes in (32, 64, 128):
            trace = streaming(1, 16, rng(), block_bytes=block_bytes)
            assert trace.total_ops() == 16


class TestStreaming:
    def test_low_reuse(self):
        trace = streaming(1, 300, rng(), stream_blocks=1000)
        assert trace.unique_blocks(64) == 300  # every access a new block

    def test_private(self):
        trace = streaming(CORES, OPS, rng())
        assert profile_trace(trace, 64).private_block_fraction == 1.0


class TestUniformMix:
    def test_has_both_private_and_shared(self):
        trace = uniform_mix(CORES, OPS, rng(), shared_frac=0.4)
        profile = profile_trace(trace, 64)
        assert 0.0 < profile.private_block_fraction < 1.0


class TestDisjointRegions:
    def test_private_regions_never_overlap(self):
        trace = private_working_set(CORES, OPS, rng(), ws_blocks=64)
        per_core_blocks = [
            {addr >> 6 for addr, _ in trace.ops[core]} for core in range(CORES)
        ]
        for a in range(CORES):
            for b in range(a + 1, CORES):
                assert not (per_core_blocks[a] & per_core_blocks[b])


class TestFalseSharing:
    def test_hot_blocks_written_by_many_cores(self):
        from repro.workloads.patterns import false_sharing

        trace = false_sharing(CORES, OPS, rng(), fs_frac=1.0, hot_blocks=4)
        profile = profile_trace(trace, 64)
        assert profile.sharing_histogram.get(CORES, 0) > 0
        assert trace.write_fraction() == 1.0

    def test_word_offsets_distinct_per_core(self):
        from repro.workloads.patterns import false_sharing

        trace = false_sharing(CORES, 50, rng(), fs_frac=1.0, hot_blocks=1)
        offsets = {
            core: {addr % 64 for addr, _ in trace.ops[core]} for core in range(CORES)
        }
        # Each core writes one distinct word slot of the same line.
        all_offsets = [next(iter(s)) for s in offsets.values()]
        assert len(set(all_offsets)) == CORES

    def test_rejects_bad_frac(self):
        from repro.workloads.patterns import false_sharing

        with pytest.raises(ConfigError):
            false_sharing(CORES, OPS, rng(), fs_frac=2.0)


class TestLockContention:
    def test_lock_lines_heavily_shared(self):
        from repro.workloads.patterns import lock_contention

        trace = lock_contention(CORES, OPS, rng(), lock_frac=0.8, num_locks=2)
        profile = profile_trace(trace, 64)
        assert profile.sharing_histogram.get(CORES, 0) > 0

    def test_exact_op_count(self):
        from repro.workloads.patterns import lock_contention

        trace = lock_contention(CORES, 137, rng())
        for core in range(CORES):
            assert trace.core_ops(core) == 137

    def test_spin_reads_precede_acquire(self):
        from repro.workloads.patterns import lock_contention

        trace = lock_contention(1, 200, rng(), lock_frac=1.0, spin_reads=3)
        ops = trace.ops[0]
        # First lock section: 3 reads then a write on the same address.
        first_addr = ops[0][0]
        assert [w for _, w in ops[:4]] == [False, False, False, True]
        assert all(addr == first_addr for addr, _ in ops[:4])

    def test_rejects_bad_params(self):
        from repro.workloads.patterns import lock_contention

        with pytest.raises(ConfigError):
            lock_contention(CORES, OPS, rng(), lock_frac=-0.1)
        with pytest.raises(ConfigError):
            lock_contention(CORES, OPS, rng(), spin_reads=-1)


class TestPhased:
    def test_alternates_private_and_shared(self):
        from repro.workloads.patterns import phased

        trace = phased(CORES, 400, rng(), compute_len=8, exchange_len=8)
        profile = profile_trace(trace, 64)
        assert 0.0 < profile.private_block_fraction < 1.0
        # Exchange blocks are touched by every core.
        assert profile.sharing_histogram.get(CORES, 0) > 0

    def test_exchange_split_producers_consumers(self):
        from repro.workloads.patterns import phased

        trace = phased(2, 200, rng(), compute_len=1, exchange_len=8,
                       compute_blocks=8, exchange_blocks=8)
        # Even cores write during exchange; odd cores only read shared data.
        shared_min = min(a for a, _ in trace.ops[1])
        odd_shared_writes = [
            w for a, w in trace.ops[1] if a >= shared_min and w
        ]
        assert odd_shared_writes.count(True) <= len(odd_shared_writes)

    def test_rejects_bad_phase_lengths(self):
        from repro.workloads.patterns import phased

        with pytest.raises(ConfigError):
            phased(CORES, OPS, rng(), compute_len=0)

    def test_suite_entry_builds(self):
        from repro.workloads.suite import build_workload

        trace = build_workload("phased-like", 4, 200, seed=1)
        assert trace.total_ops() == 800
