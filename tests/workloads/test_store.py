"""Trace store: memo/spool layering, key stability, corruption recovery."""

from __future__ import annotations

import json
import struct

import pytest

from repro.workloads import store
from repro.workloads.suite import build_workload

ARGS = dict(workload="mix", num_cores=4, ops_per_core=120, seed=3, block_bytes=64)


def get(root, **overrides):
    kwargs = dict(ARGS)
    kwargs.update(overrides)
    return store.get_packed_trace(root=root, **kwargs)


@pytest.fixture(autouse=True)
def fresh_store_state():
    """Cold trace memo and zeroed counters around every test."""
    store.clear_memo()
    store.counters.reset()
    yield
    store.clear_memo()
    store.counters.reset()


class TestKeys:
    def test_key_is_hex_sha256_and_stable(self):
        key = store.trace_key(**ARGS)
        assert len(key) == 64
        int(key, 16)
        assert key == store.trace_key(**ARGS)

    @pytest.mark.parametrize(
        "change",
        [
            {"workload": "blackscholes-like"},
            {"num_cores": 8},
            {"ops_per_core": 121},
            {"seed": 4},
            {"block_bytes": 32},
        ],
    )
    def test_any_changed_field_changes_key(self, change):
        kwargs = dict(ARGS)
        kwargs.update(change)
        assert store.trace_key(**kwargs) != store.trace_key(**ARGS)

    def test_schema_version_changes_key(self, monkeypatch):
        before = store.trace_key(**ARGS)
        monkeypatch.setattr(
            store, "TRACE_SCHEMA_VERSION", store.TRACE_SCHEMA_VERSION + 1
        )
        assert store.trace_key(**ARGS) != before


class TestLayering:
    def test_generated_once_then_memo(self, tmp_path):
        first = get(tmp_path)
        second = get(tmp_path)
        assert second is first
        assert store.counters.generated == 1
        assert store.counters.memo_hits == 1

    def test_spool_serves_after_memo_cleared(self, tmp_path):
        first = get(tmp_path)
        store.clear_memo()
        second = get(tmp_path)
        assert second == first
        assert store.counters.generated == 1
        assert store.counters.disk_hits == 1

    def test_spooled_trace_matches_direct_generation(self, tmp_path):
        get(tmp_path)
        store.clear_memo()
        loaded = get(tmp_path)
        direct = build_workload(
            ARGS["workload"], ARGS["num_cores"], ARGS["ops_per_core"],
            seed=ARGS["seed"], block_bytes=ARGS["block_bytes"],
        ).pack()
        assert loaded == direct

    def test_disk_disabled_never_spools(self, tmp_path):
        store.get_packed_trace(root=tmp_path, disk_enabled=False, **ARGS)
        assert not list(tmp_path.glob("*.trace"))
        store.clear_memo()
        store.get_packed_trace(root=tmp_path, disk_enabled=False, **ARGS)
        assert store.counters.generated == 2

    def test_stats_and_clear(self, tmp_path):
        get(tmp_path)
        get(tmp_path, seed=9)
        spool = store.TraceStore(tmp_path)
        stats = spool.stats()
        assert stats["files"] == 2
        assert stats["bytes"] > 0
        assert spool.clear() == 2
        assert spool.stats() == {"files": 0, "bytes": 0}


class TestCorruption:
    def spool_path(self, tmp_path):
        get(tmp_path)
        store.clear_memo()
        return store.TraceStore(tmp_path).path_for(store.trace_key(**ARGS))

    @pytest.mark.parametrize(
        "corruption",
        [
            b"",                       # empty file
            b"garbage not a trace",    # bad magic
            store.MAGIC + b"\xff\xff\xff\xff",  # absurd header length
            store.MAGIC + struct.pack("<I", 4) + b"{broken",  # bad header JSON
        ],
    )
    def test_corrupt_file_regenerated_not_crashed(self, tmp_path, corruption):
        path = self.spool_path(tmp_path)
        path.write_bytes(corruption)
        again = get(tmp_path)
        assert store.counters.corrupt_entries == 1
        assert store.counters.generated == 2
        assert not path.exists() or again == get(tmp_path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = self.spool_path(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-8])
        assert store.TraceStore(tmp_path).load(store.trace_key(**ARGS)) is None
        assert store.counters.corrupt_entries == 1
        assert not path.exists()

    def test_version_mismatch_rejected(self, tmp_path):
        path = self.spool_path(tmp_path)
        blob = path.read_bytes()
        (header_len,) = struct.unpack_from("<I", blob, 8)
        header = json.loads(blob[12:12 + header_len])
        header["version"] = store.TRACE_SCHEMA_VERSION + 1
        new_header = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        path.write_bytes(
            store.MAGIC + struct.pack("<I", len(new_header)) + new_header
            + blob[12 + header_len:]
        )
        assert store.TraceStore(tmp_path).load(store.trace_key(**ARGS)) is None
        assert store.counters.corrupt_entries == 1

    def test_key_mismatch_rejected(self, tmp_path):
        path = self.spool_path(tmp_path)
        other = path.with_name(("0" * 64) + ".trace")
        path.rename(other)
        assert store.TraceStore(tmp_path).load("0" * 64) is None
        assert not other.exists()


class TestLoadHardening:
    """Satellite hardening: zero-length headers, truncated headers and
    counts/payload disagreement must all regenerate, never raise."""

    def spool_path(self, tmp_path):
        get(tmp_path)
        store.clear_memo()
        return store.TraceStore(tmp_path).path_for(store.trace_key(**ARGS))

    def rewrite_header(self, path, mutate):
        blob = path.read_bytes()
        (header_len,) = struct.unpack_from("<I", blob, 8)
        header = json.loads(blob[12:12 + header_len])
        mutate(header)
        new_header = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        path.write_bytes(
            store.MAGIC + struct.pack("<I", len(new_header)) + new_header
            + blob[12 + header_len:]
        )

    def test_zero_length_header_regenerates(self, tmp_path):
        path = self.spool_path(tmp_path)
        payload = path.read_bytes()
        (header_len,) = struct.unpack_from("<I", payload, 8)
        path.write_bytes(
            store.MAGIC + struct.pack("<I", 0) + payload[12 + header_len:]
        )
        again = get(tmp_path)
        assert store.counters.corrupt_entries == 1
        assert store.counters.generated == 2
        assert again.total_ops() == ARGS["num_cores"] * ARGS["ops_per_core"]

    def test_header_longer_than_file_regenerates(self, tmp_path):
        path = self.spool_path(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(store.MAGIC + struct.pack("<I", len(blob) * 2) + blob[12:])
        assert store.TraceStore(tmp_path).load(store.trace_key(**ARGS)) is None
        assert store.counters.corrupt_entries == 1
        assert not path.exists()

    def test_counts_payload_disagreement_regenerates(self, tmp_path):
        path = self.spool_path(tmp_path)

        def bump(header):
            header["counts"] = [c + 1 for c in header["counts"]]

        self.rewrite_header(path, bump)
        again = get(tmp_path)
        assert store.counters.corrupt_entries == 1
        assert store.counters.generated == 2
        assert again.total_ops() == ARGS["num_cores"] * ARGS["ops_per_core"]

    def test_non_list_counts_regenerates(self, tmp_path):
        path = self.spool_path(tmp_path)
        self.rewrite_header(path, lambda h: h.__setitem__("counts", "nope"))
        assert store.TraceStore(tmp_path).load(store.trace_key(**ARGS)) is None
        assert store.counters.corrupt_entries == 1

    def test_negative_counts_regenerates(self, tmp_path):
        path = self.spool_path(tmp_path)
        self.rewrite_header(
            path, lambda h: h.__setitem__("counts", [-1] * len(h["counts"]))
        )
        assert store.TraceStore(tmp_path).load(store.trace_key(**ARGS)) is None
        assert store.counters.corrupt_entries == 1

    def test_non_dict_header_regenerates(self, tmp_path):
        path = self.spool_path(tmp_path)
        body = json.dumps([1, 2, 3]).encode()
        path.write_bytes(store.MAGIC + struct.pack("<I", len(body)) + body)
        assert store.TraceStore(tmp_path).load(store.trace_key(**ARGS)) is None
        assert store.counters.corrupt_entries == 1


class TestLoadEntry:
    def test_load_entry_returns_header_and_trace(self, tmp_path):
        get(tmp_path)
        store.clear_memo()
        key = store.trace_key(**ARGS)
        entry = store.TraceStore(tmp_path).load_entry(key)
        assert entry is not None
        header, packed = entry
        assert header["key"] == key
        assert header["workload"] == ARGS["workload"]
        assert packed.total_ops() == ARGS["num_cores"] * ARGS["ops_per_core"]

    def test_load_entry_missing_is_none(self, tmp_path):
        assert store.TraceStore(tmp_path).load_entry("0" * 64) is None

    def test_load_entry_preserves_extra_meta(self, tmp_path):
        from repro.sim.trace import PackedTrace

        packed = PackedTrace(1)
        packed.append(0, 7, True)
        spool = store.TraceStore(tmp_path)
        spool.store("k" * 64, {"custom": {"nested": 1}}, packed)
        header, loaded = spool.load_entry("k" * 64)
        assert header["custom"] == {"nested": 1}
        assert loaded == packed
