"""Unit tests for the named workload suite."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.characterize import profile_trace
from repro.workloads.suite import (
    SUITE,
    SUITE_ORDER,
    build_workload,
    workload_names,
)


class TestRegistry:
    def test_order_subset_of_registry(self):
        assert set(SUITE_ORDER) <= set(SUITE)

    def test_names_helper_lists_order_then_extras(self):
        from repro.workloads.suite import ALGORITHM_WORKLOADS, EXTRA_WORKLOADS

        assert workload_names() == (
            SUITE_ORDER + EXTRA_WORKLOADS + ALGORITHM_WORKLOADS
        )
        assert set(workload_names()) == set(SUITE)

    def test_every_spec_has_description(self):
        for spec in SUITE.values():
            assert spec.description

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            build_workload("nonexistent", 4, 100)


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_every_workload_builds(self, name):
        trace = build_workload(name, 4, 200, seed=1)
        assert trace.total_ops() == 4 * 200
        assert trace.num_cores == 4

    def test_deterministic_by_seed(self):
        a = build_workload("mix", 4, 200, seed=5)
        b = build_workload("mix", 4, 200, seed=5)
        assert a.ops == b.ops

    def test_seed_changes_trace(self):
        a = build_workload("mix", 4, 200, seed=5)
        b = build_workload("mix", 4, 200, seed=6)
        assert a.ops != b.ops

    def test_scales_to_more_cores(self):
        trace = build_workload("blackscholes-like", 16, 50, seed=1)
        assert trace.num_cores == 16


class TestCharacteristics:
    """The stand-ins must exhibit the sharing class they claim (DESIGN.md)."""

    def test_blackscholes_like_mostly_private(self):
        profile = profile_trace(build_workload("blackscholes-like", 8, 500), 64)
        assert profile.private_block_fraction > 0.95

    def test_bodytrack_like_has_read_sharing(self):
        profile = profile_trace(build_workload("bodytrack-like", 8, 500), 64)
        assert profile.private_block_fraction < 0.9
        assert profile.sharing_histogram.get(8, 0) > 0

    def test_canneal_like_has_big_working_set(self):
        small = build_workload("swaptions-like", 8, 500).unique_blocks(64)
        big = build_workload("canneal-like", 8, 500).unique_blocks(64)
        assert big > 3 * small

    def test_radix_like_write_heavy(self):
        radix = build_workload("radix-like", 8, 500).write_fraction()
        blacks = build_workload("blackscholes-like", 8, 500).write_fraction()
        assert radix > blacks

    def test_mix_combines_patterns(self):
        profile = profile_trace(build_workload("mix", 8, 500), 64)
        assert 0.3 < profile.private_block_fraction < 1.0
