"""Unit tests for the address-stream primitives."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.workloads.synthetic import (
    PhasedStream,
    SequentialStream,
    UniformStream,
    ZipfStream,
)


class TestSequential:
    def test_wraps_around(self):
        stream = SequentialStream(3)
        assert [stream.next() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_stride(self):
        stream = SequentialStream(8, stride=3)
        assert [stream.next() for _ in range(4)] == [0, 3, 6, 1]

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigError):
            SequentialStream(8, stride=0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            SequentialStream(0)


class TestUniform:
    def test_in_range_and_covers(self):
        stream = UniformStream(4, DeterministicRng(1))
        draws = {stream.next() for _ in range(200)}
        assert draws == {0, 1, 2, 3}


class TestZipf:
    def test_in_range(self):
        stream = ZipfStream(10, DeterministicRng(1), alpha=0.8)
        for _ in range(200):
            assert 0 <= stream.next() < 10

    def test_skew(self):
        stream = ZipfStream(100, DeterministicRng(1), alpha=1.5)
        draws = [stream.next() for _ in range(2000)]
        assert sum(1 for d in draws if d == 0) > sum(1 for d in draws if d >= 50)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ConfigError):
            ZipfStream(10, DeterministicRng(1), alpha=-1)


class TestPhased:
    def test_alternates(self):
        primary = SequentialStream(4)
        secondary = SequentialStream(4, stride=2)
        stream = PhasedStream(primary, secondary, primary_len=2, secondary_len=1)
        values = [stream.next() for _ in range(6)]
        # Phases: P P S P P S -> primary yields 0,1 then 2,3; secondary 0,2.
        assert values == [0, 1, 0, 2, 3, 2]

    def test_in_primary_flag(self):
        stream = PhasedStream(SequentialStream(2), SequentialStream(2), 1, 1)
        assert stream.in_primary()
        stream.next()
        assert not stream.in_primary()

    def test_rejects_zero_phase(self):
        with pytest.raises(ConfigError):
            PhasedStream(SequentialStream(2), SequentialStream(2), 0, 1)
