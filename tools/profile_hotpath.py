"""cProfile harness for the single-access hot path.

Profiles one full ``run_trace`` of the default 16-core ``mix`` workload for
a chosen directory kind and prints the top functions by internal time —
the view the hot-path work is tuned against.  Use it to check that a change
did not reintroduce per-access allocation, wrapper frames or string-keyed
statistics on the pipeline::

    python tools/profile_hotpath.py                  # sparse, top 25
    python tools/profile_hotpath.py stash --top 40
    python tools/profile_hotpath.py cuckoo --sort cumtime
    python tools/profile_hotpath.py sparse --ops 6000 --callers
    python tools/profile_hotpath.py stash --cores 256 \
        --workload weakscale-like --engine parallel   # scaling regime

Interpreting the output: the top entries should be the simulator run loop,
``CacheArray.lookup``, ``Network.send`` and the L1/home controllers.  Red
flags are ``GrantResult``/dataclass constructors, ``MesiState.__new__``,
``StatGroup.add`` or route/hash helpers showing per-access call counts.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[1] / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind
from repro.sim.simulator import run_trace
from repro.workloads.suite import build_workload

KINDS = {
    "sparse": DirectoryKind.SPARSE,
    "cuckoo": DirectoryKind.CUCKOO,
    "hierarchical": DirectoryKind.SCD,
    "ideal": DirectoryKind.IDEAL,
    "stash": DirectoryKind.STASH,
}


def profile_run(
    kind: str,
    ops_per_core: int,
    ratio: float,
    workload: str,
    seed: int,
    num_cores: int = 0,
    engine: str = "interp",
    engine_workers: int = 0,
) -> cProfile.Profile:
    """Profile one run_trace invocation; returns the filled profiler."""
    if num_cores:
        config = make_config(KINDS[kind], ratio=ratio, num_cores=num_cores)
    else:
        config = make_config(KINDS[kind], ratio=ratio)
    trace = build_workload(
        workload, config.num_cores, ops_per_core,
        seed=seed, block_bytes=config.block_bytes,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    run_trace(
        config, trace, engine=engine, engine_workers=engine_workers
    )
    profiler.disable()
    return profiler


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("kind", nargs="?", default="sparse", choices=sorted(KINDS))
    parser.add_argument("--ops", type=int, default=3000, help="ops per core")
    parser.add_argument("--ratio", type=float, default=0.5, help="provisioning ratio")
    parser.add_argument("--workload", default="mix")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--cores", type=int, default=0,
        help="core count (0 = the default 16-core evaluation machine); "
             "scaling-regime profiles pair this with --engine parallel",
    )
    parser.add_argument(
        "--engine", default="interp",
        choices=["interp", "vector", "parallel"],
        help="execution engine to profile",
    )
    parser.add_argument(
        "--engine-workers", type=int, default=0,
        help="scan worker processes for the parallel engine",
    )
    parser.add_argument("--top", type=int, default=25, help="rows to print")
    parser.add_argument(
        "--sort", default="tottime", choices=["tottime", "cumtime", "ncalls"],
    )
    parser.add_argument(
        "--callers", action="store_true",
        help="also print who calls the top functions",
    )
    parser.add_argument(
        "--dump", type=Path, default=None,
        help="write raw pstats data here (for snakeviz etc.)",
    )
    args = parser.parse_args(argv)

    profiler = profile_run(
        args.kind, args.ops, args.ratio, args.workload, args.seed,
        num_cores=args.cores, engine=args.engine,
        engine_workers=args.engine_workers,
    )

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.callers:
        stats.print_callers(args.top)
    print(stream.getvalue())
    if args.dump is not None:
        stats.dump_stats(args.dump)
        print(f"raw profile written to {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
