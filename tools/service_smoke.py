"""CI smoke test for the campaign service (also runnable by hand).

Boots the real CLI (``python -m repro serve``) as a subprocess on an
ephemeral port, submits a tiny 2x2 campaign over HTTP, polls it to
completion, and asserts:

* ``GET /metrics`` emits parseable Prometheus text with the expected
  families and a per-kind completed-points count matching the campaign;
* every point's reported summary is **bit-identical** to running the
  same parameterization directly through the in-process sweep engine;
* the server shuts down cleanly on SIGTERM.

Exit code 0 on success; any assertion or timeout fails loudly.  Usage::

    PYTHONPATH=src python tools/service_smoke.py [--backend inproc]
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.loadgen import (  # noqa: E402
    fetch_metrics,
    post_json,
    wait_campaign,
)

#: The tiny smoke campaign: 2 kinds x 2 ratios, one workload.
SMOKE_MANIFEST = {
    "name": "ci-smoke",
    "factors": {
        "kind": ["sparse", "stash"],
        "ratio": [0.5, 0.125],
        "workload": ["mix"],
        "ops": [300],
        "cores": [16],
    },
}

READY_PATTERN = re.compile(r"listening on http://[^:]+:(\d+)")


def _boot(backend: str, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p
    )
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--workers", "2", "--cache-dir", cache_dir,
            "serve", "--port", "0", "--backend", backend,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _wait_ready(proc: subprocess.Popen, timeout: float = 60.0) -> int:
    """Read the server's ready line; returns the bound port."""
    deadline = time.monotonic() + timeout
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"server exited early ({proc.returncode}): {proc.stdout.read()}"
            )
        line = proc.stdout.readline()
        if not line:
            continue
        print(f"[server] {line.rstrip()}")
        match = READY_PATTERN.search(line)
        if match:
            return int(match.group(1))
    raise SystemExit("server never printed its ready line")


def _direct_summaries(cache_dir: str):
    """The same four points, simulated directly (no cache, no service)."""
    from repro.analysis.runner import run_points
    from repro.service.manifest import CampaignManifest

    manifest = CampaignManifest.from_dict(SMOKE_MANIFEST)
    specs = manifest.expand()
    results = run_points(
        [spec.point for spec in specs],
        workers=1,
        cache_dir=os.path.join(cache_dir, "direct"),
        cache_enabled=False,
        trace_cache_enabled=False,
    )
    return {spec.index: result.summary() for spec, result in zip(specs, results)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", default="inproc", choices=["inproc", "pool"],
        help="dispatch backend the server uses (default: inproc)",
    )
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    cache_dir = tempfile.mkdtemp(prefix="service_smoke_")
    proc = _boot(args.backend, cache_dir)
    try:
        port = _wait_ready(proc)
        base = f"http://127.0.0.1:{port}"

        submitted = post_json(base, "/campaigns", SMOKE_MANIFEST)
        campaign_id = submitted["id"]
        print(f"submitted campaign {campaign_id} "
              f"({submitted['total_points']} points)")
        assert submitted["total_points"] == 4, submitted

        status = wait_campaign(base, campaign_id, timeout=args.timeout)
        print(f"campaign finished: {status['status']} {status['counts']}")
        assert status["status"] == "done", status["counts"]
        assert status["counts"]["done"] == 4

        metrics = fetch_metrics(base)
        for family in (
            "repro_points_completed_total",
            "repro_queue_depth",
            "repro_worker_utilization",
            "repro_points_per_second",
            "repro_result_cache_hit_rate",
            "repro_point_latency_seconds",
            "repro_http_requests_total",
        ):
            assert family in metrics, f"missing metric family {family}"
        completed = sum(metrics["repro_points_completed_total"].values())
        assert completed == 4, f"expected 4 completed points, saw {completed}"
        print(f"metrics OK: {len(metrics)} families, {completed} points counted")

        direct = _direct_summaries(cache_dir)
        for point in status["points"]:
            expected = direct[point["index"]]
            assert point["summary"] == expected, (
                f"point {point['index']} diverged from direct run_trace:\n"
                f"  service: {point['summary']}\n  direct:  {expected}"
            )
        print("all 4 point summaries bit-identical to direct simulation")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        assert code == 0, f"server exited {code} on SIGTERM"
        print("clean SIGTERM shutdown")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        import shutil

        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
