#!/usr/bin/env python
"""Validate repro.obs export files (CI smoke gate).

Checks one or more exported files by extension:

* ``*.trace.json`` — structural Chrome-trace validation via
  :func:`repro.obs.validate_chrome_trace` (required fields, span
  durations, non-decreasing timestamps, ``dropped_events`` accounting).
* ``*.epochs.jsonl`` — the meta header parses and matches the
  ``repro.obs.epochs`` format, every epoch record is valid JSON with
  ``op``/``clock``/``d``/``g`` fields, and ``op`` is strictly increasing.

Exit code 0 when every file passes; 1 with one line per problem
otherwise.

Usage::

    python tools/validate_trace.py run.trace.json run.epochs.jsonl
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import read_epochs_jsonl, validate_chrome_trace  # noqa: E402


def check_trace(path: Path) -> List[str]:
    """Problems in one Chrome-trace JSON file."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable trace: {exc}"]
    problems = validate_chrome_trace(document)
    raw_events = document.get("traceEvents")
    if isinstance(raw_events, list):
        events = [
            event for event in raw_events
            if isinstance(event, dict) and event.get("ph") != "M"
        ]
        if not events:
            problems.append("trace contains no events")
    return [f"{path}: {problem}" for problem in problems]


def check_epochs(path: Path) -> List[str]:
    """Problems in one epoch-series JSONL file."""
    problems: List[str] = []
    try:
        meta, epochs = read_epochs_jsonl(path)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable epochs file: {exc}"]
    if meta.get("format") != "repro.obs.epochs":
        problems.append(f"unexpected meta format {meta.get('format')!r}")
    if not epochs:
        problems.append("no epoch records")
    last_op = None
    for index, epoch in enumerate(epochs):
        for field in ("op", "clock", "d", "g"):
            if field not in epoch:
                problems.append(f"epoch {index} missing {field!r}")
        op = epoch.get("op")
        if isinstance(op, (int, float)):
            if last_op is not None and op <= last_op:
                problems.append(f"epoch {index} op {op} <= previous {last_op}")
            last_op = op
    declared = meta.get("epochs")
    if isinstance(declared, int) and declared != len(epochs):
        problems.append(f"meta declares {declared} epochs, file has {len(epochs)}")
    return [f"{path}: {problem}" for problem in problems]


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    problems: List[str] = []
    for name in argv:
        path = Path(name)
        if name.endswith(".epochs.jsonl"):
            problems += check_epochs(path)
        elif name.endswith(".json"):
            problems += check_trace(path)
        else:
            problems.append(f"{path}: unrecognized export extension")
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"validated {len(argv)} export file(s): OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
